#pragma once

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <optional>
#include <utility>
#include <vector>

#include "ckpt/manifest.hpp"

/// Content-addressed shared artifact cache.
///
/// Keyed by the job's artifact key — Pipeline::config_fingerprint combined
/// with the identity of the input files (path + size per library; the
/// fingerprint deliberately treats paths as mere locators, so the input
/// identity has to be folded in here for two tenants' different datasets
/// not to collide). One entry holds the UFX shards exactly as the
/// checkpoint subsystem encodes them (ckpt::encode/decode_ufx_shard) plus
/// the k-mer bookkeeping stats, so a cache hit can skip the whole k-mer
/// analysis stage of a resubmitted job.
///
/// Layout: `<dir>/<key as 16 hex digits>/ufx.<i>` + `meta.bin`. Writes go
/// shards-first, meta last via tmp+rename — meta.bin is the commit point,
/// so a torn store is an ordinary miss, never a corrupt hit. Every shard
/// is CRC-32C'd in meta and re-verified on lookup.
namespace hipmer::server {

inline constexpr std::uint32_t kCacheMetaMagic = 0x43584655;  // "UFXC"
/// v2 appended a trailing CRC-32C over the whole meta body. v1 CRC'd every
/// shard but left meta.bin itself unprotected, so a bit flip in a recorded
/// shard length or CRC could turn a valid entry into a permanent miss —
/// or, worse, a flip in the aux stats fed silently wrong bookkeeping to a
/// resumed job. Decoders reject v1 (a plain miss; the producer
/// repopulates).
inline constexpr std::uint32_t kCacheMetaVersion = 2;

/// Decoded meta.bin: the entry's key echo, the k-mer bookkeeping stats,
/// and (size, CRC-32C) per stored UFX shard.
struct CacheMeta {
  std::uint64_t key = 0;
  std::uint64_t distinct_kmers = 0;
  double singleton_fraction = 0.0;
  std::uint64_t heavy_hitters = 0;
  std::vector<std::pair<std::uint64_t, std::uint32_t>> shards;
};

[[nodiscard]] std::vector<std::byte> encode_cache_meta(const CacheMeta& meta);
/// nullopt on any structural problem (bad magic/version/CRC, truncation,
/// trailing bytes). Whole-buffer CRC is verified before any field is read.
[[nodiscard]] std::optional<CacheMeta> decode_cache_meta(
    const std::vector<std::byte>& bytes);

class ArtifactCache {
 public:
  explicit ArtifactCache(std::filesystem::path dir);

  struct UfxArtifact {
    /// Encoded shards in the ckpt wire format; any shard count is usable
    /// by any team size (the consumer re-deals round robin).
    std::vector<std::vector<std::byte>> shards;
    ckpt::AuxStats aux;
  };

  /// nullopt on miss; any CRC/shape mismatch is also a miss (and the
  /// offending entry is removed so the next store can repopulate it).
  [[nodiscard]] std::optional<UfxArtifact> lookup_ufx(std::uint64_t key);

  /// Idempotent store. Returns false on I/O failure (the cache then
  /// simply misses next time — callers never depend on a store landing).
  bool store_ufx(std::uint64_t key,
                 const std::vector<std::vector<std::byte>>& shards,
                 const ckpt::AuxStats& aux);

  [[nodiscard]] std::uint64_t hits() const {
    return hits_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] const std::filesystem::path& dir() const { return dir_; }

 private:
  [[nodiscard]] std::filesystem::path entry_dir(std::uint64_t key) const;

  std::filesystem::path dir_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
};

}  // namespace hipmer::server
