#pragma once

#include <optional>
#include <string>
#include <vector>

/// Client side of the control protocol: one framed request line, one
/// END-terminated framed response. Used by the CLI's submit/status modes
/// and the tests.
namespace hipmer::server {

struct Response {
  /// Unframed response lines, END excluded. The first line starts with
  /// OK, ERR, JOB, or STATS.
  std::vector<std::string> lines;

  [[nodiscard]] bool ok() const {
    return !lines.empty() && lines.front().rfind("ERR", 0) != 0;
  }
  [[nodiscard]] const std::string& first() const { return lines.front(); }
};

/// Connect to the server socket, send `command`, read until END. nullopt
/// on connect failure, CRC-corrupt response, or EOF before END.
[[nodiscard]] std::optional<Response> request(const std::string& socket_path,
                                              const std::string& command);

/// Retry `request` until the socket accepts connections (server startup
/// race) or `attempts * delay_ms` elapses.
[[nodiscard]] std::optional<Response> request_with_retry(
    const std::string& socket_path, const std::string& command, int attempts,
    int delay_ms);

/// Pull "key=value" out of a response line; fallback when absent.
[[nodiscard]] std::string response_field(const std::string& line,
                                         const std::string& key,
                                         const std::string& fallback = "");

}  // namespace hipmer::server
