#include "server/client.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <thread>

#include "server/protocol.hpp"

namespace hipmer::server {

std::optional<Response> request(const std::string& socket_path,
                                const std::string& command) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof addr.sun_path) return std::nullopt;
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof addr.sun_path - 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return std::nullopt;
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    ::close(fd);
    return std::nullopt;
  }
  if (!send_line(fd, command)) {
    ::close(fd);
    return std::nullopt;
  }
  // Half-close so a server looping on the connection sees EOF after this
  // one command.
  ::shutdown(fd, SHUT_WR);

  Response response;
  LineReader reader(fd);
  bool saw_end = false;
  while (auto raw = reader.next()) {
    const auto text = unframe_line(*raw);
    if (!text) {
      ::close(fd);
      return std::nullopt;
    }
    if (*text == kEnd) {
      saw_end = true;
      break;
    }
    response.lines.push_back(*text);
  }
  ::close(fd);
  if (!saw_end || response.lines.empty()) return std::nullopt;
  return response;
}

std::optional<Response> request_with_retry(const std::string& socket_path,
                                           const std::string& command,
                                           int attempts, int delay_ms) {
  for (int i = 0; i < attempts; ++i) {
    if (auto r = request(socket_path, command)) return r;
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
  }
  return std::nullopt;
}

std::string response_field(const std::string& line, const std::string& key,
                           const std::string& fallback) {
  const std::string needle = key + "=";
  std::size_t pos = 0;
  while (pos < line.size()) {
    const auto start = line.find(needle, pos);
    if (start == std::string::npos) return fallback;
    if (start == 0 || line[start - 1] == ' ') {
      const auto vstart = start + needle.size();
      const auto vend = line.find(' ', vstart);
      return line.substr(vstart, vend == std::string::npos ? std::string::npos
                                                           : vend - vstart);
    }
    pos = start + 1;
  }
  return fallback;
}

}  // namespace hipmer::server
