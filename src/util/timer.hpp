#pragma once

#include <chrono>
#include <map>
#include <string>
#include <vector>

/// Wall-clock timing utilities.
///
/// Bench binaries report two time axes: measured wall seconds for runs that
/// fit this host, and modeled seconds from pgas::MachineModel for the
/// paper-scale axes. These classes provide the former.
namespace hipmer::util {

/// Monotonic stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Accumulates named stage durations, preserving first-seen order.
///
/// Used by the pipeline driver to print the per-stage breakdown that
/// Figure 8 of the paper reports (k-mer analysis / contig generation /
/// scaffolding fractions).
class StageTimer {
 public:
  /// Add `seconds` to stage `name`, creating it on first use.
  void add(const std::string& name, double seconds) {
    auto it = index_.find(name);
    if (it == index_.end()) {
      index_.emplace(name, stages_.size());
      stages_.emplace_back(name, seconds);
    } else {
      stages_[it->second].second += seconds;
    }
  }

  /// Run `fn` and charge its wall time to stage `name`.
  template <typename Fn>
  auto time(const std::string& name, Fn&& fn) {
    WallTimer t;
    if constexpr (std::is_void_v<decltype(fn())>) {
      fn();
      add(name, t.seconds());
    } else {
      auto result = fn();
      add(name, t.seconds());
      return result;
    }
  }

  [[nodiscard]] double total() const {
    double sum = 0;
    for (const auto& [name, secs] : stages_) sum += secs;
    return sum;
  }

  [[nodiscard]] double get(const std::string& name) const {
    auto it = index_.find(name);
    return it == index_.end() ? 0.0 : stages_[it->second].second;
  }

  [[nodiscard]] const std::vector<std::pair<std::string, double>>& stages()
      const {
    return stages_;
  }

 private:
  std::vector<std::pair<std::string, double>> stages_;
  std::map<std::string, std::size_t> index_;
};

}  // namespace hipmer::util
