#pragma once

#include <cstdint>
#include <string>
#include <vector>

/// Assembly quality statistics (contiguity metrics).
///
/// The paper defers accuracy evaluation to the Assemblathon studies, but a
/// usable assembler still has to report the standard contiguity numbers;
/// examples and integration tests use these to check that scaffolding
/// actually improves the assembly.
namespace hipmer::util {

struct AssemblyStats {
  std::size_t num_sequences = 0;
  std::uint64_t total_length = 0;
  std::uint64_t min_length = 0;
  std::uint64_t max_length = 0;
  double mean_length = 0.0;
  /// Length L such that sequences of length >= L cover half the assembly.
  std::uint64_t n50 = 0;
  /// Number of sequences needed to reach half the assembly (L50).
  std::size_t l50 = 0;
  std::uint64_t n90 = 0;
};

/// Compute contiguity stats from a list of sequence lengths.
[[nodiscard]] AssemblyStats compute_assembly_stats(
    std::vector<std::uint64_t> lengths);

/// Convenience overload for a set of sequences.
[[nodiscard]] AssemblyStats compute_assembly_stats(
    const std::vector<std::string>& sequences);

/// Render as a short human-readable block.
[[nodiscard]] std::string format_assembly_stats(const AssemblyStats& stats);

/// Basic univariate summary used by insert-size estimation tests and the
/// k-mer histogram reporting.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
};

[[nodiscard]] Summary summarize(const std::vector<double>& values);

}  // namespace hipmer::util
