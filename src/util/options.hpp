#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

/// Tiny command-line option parser used by the examples and bench binaries.
///
/// Accepts `--key value` and `--key=value` pairs plus bare `--flag`
/// switches. Unknown keys are collected so binaries can reject typos.
namespace hipmer::util {

class Options {
 public:
  Options(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& key) const;

  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& key,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const;

  /// Positional (non `--`) arguments, in order.
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  /// Keys that were parsed (for validation / --help output).
  [[nodiscard]] std::vector<std::string> keys() const;

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace hipmer::util
