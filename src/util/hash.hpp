#pragma once

#include <cstdint>
#include <cstring>
#include <string_view>

/// Hashing primitives shared by every distributed data structure.
///
/// All of HipMer's distributed hash tables key on 64-bit fingerprints of
/// packed k-mers or contig-id pairs; the quality of these mixers directly
/// controls load balance across ranks, so they are the finalizers from
/// splitmix64 / murmur3, which pass SMHasher.
namespace hipmer::util {

/// splitmix64 finalizer: a bijective mixer over 64-bit values.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// murmur3 fmix64: second independent mixer, used where two decorrelated
/// hash functions of the same key are needed (e.g. Bloom filter double
/// hashing).
[[nodiscard]] constexpr std::uint64_t fmix64(std::uint64_t x) noexcept {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

/// Combine two 64-bit hashes (boost::hash_combine style, 64-bit constant).
[[nodiscard]] constexpr std::uint64_t hash_combine(std::uint64_t seed,
                                                   std::uint64_t v) noexcept {
  return seed ^ (mix64(v) + 0x9e3779b97f4a7c15ULL + (seed << 12) + (seed >> 4));
}

/// Hash an arbitrary byte string (FNV-1a core, mixed through splitmix64).
[[nodiscard]] inline std::uint64_t hash_bytes(const void* data,
                                              std::size_t len) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return mix64(h);
}

[[nodiscard]] inline std::uint64_t hash_string(std::string_view s) noexcept {
  return hash_bytes(s.data(), s.size());
}

/// Incremental CRC-32C (Castagnoli, reflected polynomial 0x82f63b78) —
/// the checksum guarding checkpoint shards and manifests (src/ckpt).
/// CRC-32C detects every single-byte corruption and all burst errors up to
/// 32 bits, which is exactly the guarantee the snapshot store needs: a
/// flipped byte in a shard or manifest must never be loadable as data.
class Crc32 {
 public:
  void update(const void* data, std::size_t len) noexcept {
    const auto* p = static_cast<const unsigned char*>(data);
    std::uint32_t crc = state_;
    for (std::size_t i = 0; i < len; ++i)
      crc = (crc >> 8) ^ table()[(crc ^ p[i]) & 0xff];
    state_ = crc;
  }

  /// Finalized checksum of everything fed so far (update may continue).
  [[nodiscard]] std::uint32_t value() const noexcept { return ~state_; }

  void reset() noexcept { state_ = 0xffffffffU; }

 private:
  static const std::uint32_t* table() noexcept {
    static const auto tab = [] {
      struct Table {
        std::uint32_t entries[256];
      } t{};
      for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int bit = 0; bit < 8; ++bit)
          c = (c & 1) ? (c >> 1) ^ 0x82f63b78U : c >> 1;
        t.entries[i] = c;
      }
      return t;
    }();
    return tab.entries;
  }

  std::uint32_t state_ = 0xffffffffU;
};

[[nodiscard]] inline std::uint32_t crc32c(const void* data,
                                          std::size_t len) noexcept {
  Crc32 crc;
  crc.update(data, len);
  return crc.value();
}

}  // namespace hipmer::util
