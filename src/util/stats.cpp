#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

namespace hipmer::util {

AssemblyStats compute_assembly_stats(std::vector<std::uint64_t> lengths) {
  AssemblyStats stats;
  if (lengths.empty()) return stats;

  std::sort(lengths.begin(), lengths.end(), std::greater<>());
  stats.num_sequences = lengths.size();
  stats.total_length = std::accumulate(lengths.begin(), lengths.end(),
                                       std::uint64_t{0});
  stats.max_length = lengths.front();
  stats.min_length = lengths.back();
  stats.mean_length =
      static_cast<double>(stats.total_length) / static_cast<double>(lengths.size());

  const std::uint64_t half = stats.total_length / 2;
  const std::uint64_t ninety =
      static_cast<std::uint64_t>(0.9 * static_cast<double>(stats.total_length));
  std::uint64_t running = 0;
  for (std::size_t i = 0; i < lengths.size(); ++i) {
    running += lengths[i];
    if (stats.n50 == 0 && running >= half) {
      stats.n50 = lengths[i];
      stats.l50 = i + 1;
    }
    if (stats.n90 == 0 && running >= ninety) {
      stats.n90 = lengths[i];
      break;
    }
  }
  return stats;
}

AssemblyStats compute_assembly_stats(const std::vector<std::string>& sequences) {
  std::vector<std::uint64_t> lengths;
  lengths.reserve(sequences.size());
  for (const auto& s : sequences) lengths.push_back(s.size());
  return compute_assembly_stats(std::move(lengths));
}

std::string format_assembly_stats(const AssemblyStats& stats) {
  std::ostringstream os;
  os << "sequences: " << stats.num_sequences
     << "  total: " << stats.total_length << " bp"
     << "  max: " << stats.max_length
     << "  N50: " << stats.n50
     << "  L50: " << stats.l50
     << "  N90: " << stats.n90;
  return os.str();
}

Summary summarize(const std::vector<double>& values) {
  Summary s;
  if (values.empty()) return s;
  s.count = values.size();
  s.mean = std::accumulate(values.begin(), values.end(), 0.0) /
           static_cast<double>(values.size());
  double var = 0.0;
  for (double v : values) var += (v - s.mean) * (v - s.mean);
  s.stddev = values.size() > 1
                 ? std::sqrt(var / static_cast<double>(values.size() - 1))
                 : 0.0;
  auto [mn, mx] = std::minmax_element(values.begin(), values.end());
  s.min = *mn;
  s.max = *mx;
  return s;
}

}  // namespace hipmer::util
