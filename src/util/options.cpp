#include "util/options.hpp"

#include <cstdlib>
#include <string_view>

namespace hipmer::util {

Options::Options(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (!arg.starts_with("--")) {
      positional_.emplace_back(arg);
      continue;
    }
    arg.remove_prefix(2);
    if (auto eq = arg.find('='); eq != std::string_view::npos) {
      values_[std::string(arg.substr(0, eq))] = std::string(arg.substr(eq + 1));
    } else if (i + 1 < argc && std::string_view(argv[i + 1]).substr(0, 2) != "--") {
      values_[std::string(arg)] = argv[++i];
    } else {
      values_[std::string(arg)] = "true";
    }
  }
}

bool Options::has(const std::string& key) const { return values_.count(key) > 0; }

std::string Options::get(const std::string& key,
                         const std::string& fallback) const {
  auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t Options::get_int(const std::string& key,
                              std::int64_t fallback) const {
  auto it = values_.find(key);
  return it == values_.end() ? fallback : std::strtoll(it->second.c_str(), nullptr, 10);
}

double Options::get_double(const std::string& key, double fallback) const {
  auto it = values_.find(key);
  return it == values_.end() ? fallback : std::strtod(it->second.c_str(), nullptr);
}

bool Options::get_bool(const std::string& key, bool fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::vector<std::string> Options::keys() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [k, v] : values_) out.push_back(k);
  return out;
}

}  // namespace hipmer::util
