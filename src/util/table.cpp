#include "util/table.hpp"

#include <cassert>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace hipmer::util {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> row) {
  assert(row.size() == header_.size() && "row arity must match header");
  rows_.push_back(std::move(row));
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      // Right-align everything but the first column; first is usually a label.
      if (c == 0) {
        os << row[c] << std::string(widths[c] - row[c].size(), ' ');
      } else {
        os << std::string(widths[c] - row[c].size(), ' ') << row[c];
      }
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c)
    total += widths[c] + (c == 0 ? 0 : 2);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string TextTable::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

bool TextTable::write_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << to_csv();
  return static_cast<bool>(out);
}

std::string TextTable::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string TextTable::fmt_pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", precision, fraction * 100.0);
  return buf;
}

}  // namespace hipmer::util
