#pragma once

#include <cstdio>
#include <mutex>
#include <string>

/// Minimal leveled logger.
///
/// SPMD code logs from many ranks at once; everything funnels through one
/// mutex so lines never interleave. Rank-0-only logging is the caller's
/// convention (pass-through helpers live in pgas::RankContext).
namespace hipmer::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

class Logger {
 public:
  static Logger& instance() {
    static Logger logger;
    return logger;
  }

  void set_level(LogLevel level) { level_ = level; }
  [[nodiscard]] LogLevel level() const { return level_; }

  void log(LogLevel level, const std::string& msg) {
    if (level < level_) return;
    std::lock_guard<std::mutex> lock(mu_);
    std::fprintf(stderr, "[%s] %s\n", tag(level), msg.c_str());
  }

 private:
  static const char* tag(LogLevel level) {
    switch (level) {
      case LogLevel::kDebug: return "debug";
      case LogLevel::kInfo: return "info ";
      case LogLevel::kWarn: return "warn ";
      case LogLevel::kError: return "error";
    }
    return "?";
  }

  LogLevel level_ = LogLevel::kWarn;
  std::mutex mu_;
};

inline void log_debug(const std::string& msg) {
  Logger::instance().log(LogLevel::kDebug, msg);
}
inline void log_info(const std::string& msg) {
  Logger::instance().log(LogLevel::kInfo, msg);
}
inline void log_warn(const std::string& msg) {
  Logger::instance().log(LogLevel::kWarn, msg);
}
inline void log_error(const std::string& msg) {
  Logger::instance().log(LogLevel::kError, msg);
}

}  // namespace hipmer::util
