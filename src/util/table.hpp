#pragma once

#include <string>
#include <vector>

/// Fixed-width text tables + CSV emission for the benchmark harness.
///
/// Every bench binary regenerates one of the paper's tables/figures; this
/// gives them a uniform way to print the rows to stdout and mirror them to a
/// CSV file for plotting.
namespace hipmer::util {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Append a row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Render with column alignment, a rule under the header.
  [[nodiscard]] std::string to_string() const;

  /// Comma-separated form (header + rows), no quoting of commas (callers
  /// never emit commas inside cells).
  [[nodiscard]] std::string to_csv() const;

  /// Write the CSV form to `path`; returns false on I/O failure.
  bool write_csv(const std::string& path) const;

  [[nodiscard]] std::size_t num_rows() const { return rows_.size(); }

  /// Format helpers for numeric cells.
  static std::string fmt(double v, int precision = 2);
  static std::string fmt_pct(double fraction, int precision = 1);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace hipmer::util
