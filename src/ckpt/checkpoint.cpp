#include "ckpt/checkpoint.hpp"

#include <algorithm>
#include <atomic>
#include <climits>
#include <map>
#include <numeric>

#include "util/hash.hpp"
#include "util/logging.hpp"

namespace hipmer::ckpt {

namespace {

/// Stages a resume from `stage` still needs loaded alongside it. `rounds`
/// lets the final round's scaffolds be recognized as self-contained; pass
/// INT_MAX when the round count is unknown (pruning) for the conservative
/// answer.
std::vector<std::string> load_dependencies(const std::string& stage,
                                           int rounds) {
  const int progress = stage_progress(stage);
  if (progress <= kProgressReads) return {};
  if (progress == kProgressUfx || progress == kProgressContigs)
    return {kStageReads};
  const int round = progress_round(progress);
  if (progress_is_alignments(progress)) {
    // Round r's scaffolding needs the store input (contigs for round 0,
    // previous scaffolds after) plus the reads for gap closing.
    if (round == 0) return {kStageReads, kStageContigs};
    return {kStageReads, stage_scaffolds(round - 1)};
  }
  // scaffolds.r: the final round's records ARE the result; earlier rounds
  // feed the next round's aligner, which needs the reads again.
  if (round >= rounds - 1) return {};
  return {kStageReads};
}

}  // namespace

Checkpointer::Checkpointer(CheckpointConfig config, std::uint64_t fingerprint)
    : config_(std::move(config)),
      fingerprint_(fingerprint),
      store_(config_.dir) {
  if (!config_.enabled()) return;
  // Reclaim debris from a run that died between temp write and rename —
  // orphaned .tmp files are invisible to the manifest and leak forever
  // otherwise.
  store_.sweep_orphans();
  if (auto manifest = store_.load_manifest()) manifest_ = std::move(*manifest);
}

StageEntry Checkpointer::begin_entry(const std::string& stage, int shard_count,
                                     const AuxStats& aux) {
  StageEntry entry;
  entry.stage = stage;
  entry.seq = manifest_.next_seq();
  entry.fingerprint = fingerprint_;
  entry.shard_count = static_cast<std::uint32_t>(shard_count);
  entry.shard_bytes.assign(entry.shard_count, 0);
  entry.shard_crcs.assign(entry.shard_count, 0);
  entry.aux = aux;
  if (!store_.prepare_entry(entry))
    util::log_warn("ckpt: cannot create " + store_.entry_dir(entry).string());
  return entry;
}

bool Checkpointer::write_shard(StageEntry& entry, int shard,
                               const std::vector<std::byte>& payload) {
  const auto s = static_cast<std::size_t>(shard);
  if (shard < 0 || s >= entry.shard_bytes.size()) return false;
  if (!store_.write_shard(entry, static_cast<std::uint32_t>(shard), payload))
    return false;
  entry.shard_bytes[s] = payload.size();
  entry.shard_crcs[s] = util::crc32c(payload.data(), payload.size());
  return true;
}

bool Checkpointer::commit(StageEntry entry) {
  const std::string stage = entry.stage;
  manifest_.entries.push_back(std::move(entry));
  if (!store_.write_manifest(manifest_)) {
    manifest_.entries.pop_back();
    util::log_warn("ckpt: manifest commit failed for stage " + stage);
    return false;
  }
  prune();
  return true;
}

void Checkpointer::commit_local(StageEntry entry) {
  manifest_.entries.push_back(std::move(entry));
}

const StageEntry* Checkpointer::usable(const std::string& stage) const {
  const StageEntry* best = nullptr;
  for (const auto& entry : manifest_.entries) {
    if (entry.stage != stage || entry.fingerprint != fingerprint_) continue;
    if (blacklist_.count({entry.stage, entry.seq}) != 0) continue;
    if (best == nullptr || entry.seq > best->seq) best = &entry;
  }
  return best;
}

std::optional<std::vector<std::vector<std::byte>>> Checkpointer::read_entry(
    pgas::ThreadTeam& team, const StageEntry& entry) const {
  const int p = team.nranks();
  std::vector<std::vector<std::byte>> shards(entry.shard_count);
  std::atomic<bool> ok{true};
  // Threads: deal shards round robin over the rank threads. Multi-process:
  // every process needs the full artifact in its own address space, so each
  // one reads all shards (charging I/O only for the shards it "owns" to
  // keep the global counters matching the threads fabric).
  const bool multi = team.multiprocess();
  team.begin_stage(kRestoreFaultStage);
  team.run([&](pgas::Rank& rank) {
    team.faults().on_fault_point(rank.id());
    const auto start = multi ? 0u : static_cast<std::uint32_t>(rank.id());
    const auto step = multi ? 1u : static_cast<std::uint32_t>(p);
    for (std::uint32_t s = start; s < entry.shard_count; s += step) {
      auto bytes = store_.read_shard(entry, s);
      if (!bytes) {
        ok.store(false, std::memory_order_relaxed);
        continue;
      }
      if (s % static_cast<std::uint32_t>(p) ==
          static_cast<std::uint32_t>(rank.id()))
        rank.stats().add_io_read(bytes->size());
      shards[s] = std::move(*bytes);
    }
    rank.barrier();
  });
  // All processes must agree on failure, or their resume states diverge.
  const int failed = team.serial_sum(ok.load(std::memory_order_relaxed) ? 0 : 1);
  if (failed != 0) return std::nullopt;
  return shards;
}

ResumeState Checkpointer::load(pgas::ThreadTeam& team, int rounds,
                               int max_progress) {
  ResumeState none;
  if (!config_.enabled() || manifest_.entries.empty()) return none;
  const int p = team.nranks();

  // Resume targets, furthest pipeline progress first.
  std::vector<std::string> targets;
  for (int r = rounds - 1; r >= 0; --r) {
    targets.push_back(stage_scaffolds(r));
    targets.push_back(stage_alignments(r));
  }
  targets.push_back(kStageContigs);
  targets.push_back(kStageUfx);
  targets.push_back(kStageReads);

  for (;;) {
    // Pick the furthest target whose entry and dependency closure exist.
    const StageEntry* target = nullptr;
    std::vector<const StageEntry*> entries;
    for (const auto& stage : targets) {
      if (stage_progress(stage) > max_progress) continue;
      const auto* candidate = usable(stage);
      if (candidate == nullptr) continue;
      std::vector<const StageEntry*> resolved;
      bool complete = true;
      for (const auto& dep : load_dependencies(stage, rounds)) {
        const auto* e = usable(dep);
        if (e == nullptr) {
          complete = false;
          break;
        }
        resolved.push_back(e);
      }
      if (!complete) continue;
      target = candidate;
      entries = std::move(resolved);
      entries.push_back(candidate);
      break;
    }
    if (target == nullptr) return none;

    // Read + CRC-verify every shard of every entry involved.
    const StageEntry* bad = nullptr;
    std::vector<std::vector<std::vector<std::byte>>> shard_sets(
        entries.size());
    for (std::size_t i = 0; i < entries.size(); ++i) {
      auto shards = read_entry(team, *entries[i]);
      if (!shards) {
        bad = entries[i];
        break;
      }
      shard_sets[i] = std::move(*shards);
    }

    // Decode and re-shard onto the current team.
    ResumeState loaded;
    if (bad == nullptr) {
      loaded.progress = stage_progress(target->stage);
      loaded.aux = target->aux;
      for (std::size_t i = 0; i < entries.size() && bad == nullptr; ++i) {
        const auto& entry = *entries[i];
        const auto& shards = shard_sets[i];
        const int progress = stage_progress(entry.stage);
        if (entry.stage == kStageReads) {
          std::vector<std::vector<std::vector<seq::Read>>> by_shard;
          for (const auto& payload : shards) {
            auto libs = decode_reads_shard(payload);
            if (!libs) {
              bad = &entry;
              break;
            }
            by_shard.push_back(std::move(*libs));
          }
          if (bad == nullptr)
            loaded.reads = reshard_reads(std::move(by_shard), p);
        } else if (entry.stage == kStageUfx) {
          // Deal shards round robin; downstream re-owns every k-mer by its
          // hash, so any distribution is valid input.
          loaded.ufx.assign(static_cast<std::size_t>(p), {});
          for (std::size_t s = 0; s < shards.size(); ++s) {
            auto records = decode_ufx_shard(shards[s]);
            if (!records) {
              bad = &entry;
              break;
            }
            auto& dest = loaded.ufx[s % static_cast<std::size_t>(p)];
            dest.insert(dest.end(), records->begin(), records->end());
          }
        } else if (entry.stage == kStageContigs) {
          // Same: ContigStore::build redistributes by id % P.
          loaded.contigs.assign(static_cast<std::size_t>(p), {});
          for (std::size_t s = 0; s < shards.size(); ++s) {
            auto contigs = decode_contigs_shard(shards[s]);
            if (!contigs) {
              bad = &entry;
              break;
            }
            auto& dest = loaded.contigs[s % static_cast<std::size_t>(p)];
            std::move(contigs->begin(), contigs->end(),
                      std::back_inserter(dest));
          }
        } else if (progress_is_alignments(progress)) {
          std::vector<std::vector<align::ReadAlignment>> by_shard;
          for (const auto& payload : shards) {
            auto alignments = decode_alignments_shard(payload);
            if (!alignments) {
              bad = &entry;
              break;
            }
            by_shard.push_back(std::move(*alignments));
          }
          if (bad == nullptr) {
            loaded.aligned_round = progress_round(progress);
            loaded.alignments = reshard_alignments(std::move(by_shard), p);
          }
        } else {
          std::vector<ScaffoldShard> by_shard;
          for (const auto& payload : shards) {
            auto shard = decode_scaffolds_shard(payload);
            if (!shard) {
              bad = &entry;
              break;
            }
            by_shard.push_back(std::move(*shard));
          }
          if (bad == nullptr) {
            for (const auto& shard : by_shard) {
              if (!shard.extras) continue;
              loaded.closure_stats = shard.extras->closure_stats;
              loaded.inserts = shard.extras->inserts;
            }
            loaded.scaffold_round = progress_round(progress);
            loaded.scaffolds = merge_scaffold_shards(std::move(by_shard));
          }
        }
      }
    }

    if (bad != nullptr) {
      util::log_warn("ckpt: snapshot " + bad->stage + "." +
                     std::to_string(bad->seq) +
                     " failed validation; falling back");
      blacklist_.insert({bad->stage, bad->seq});
      continue;
    }
    util::log_info("ckpt: resuming from " + target->stage + "." +
                   std::to_string(target->seq));
    return loaded;
  }
}

void Checkpointer::prune() {
  if (config_.keep_last <= 0) return;
  const std::size_t n = manifest_.entries.size();
  if (n <= static_cast<std::size_t>(config_.keep_last)) return;

  // A shared checkpoint dir may interleave entries from several jobs
  // (server tenants resubmitting with changed configs, hence different
  // fingerprints). keep_last and the dependency closure apply within each
  // fingerprint's group, so one job's snapshots never evict another's.
  std::map<std::uint64_t, std::vector<std::size_t>> groups;
  for (std::size_t i = 0; i < n; ++i)
    groups[manifest_.entries[i].fingerprint].push_back(i);

  // usable() is pinned to this Checkpointer's own fingerprint; the closure
  // of a foreign group needs the same lookup under that group's print.
  const auto newest_usable = [&](std::uint64_t fp, const std::string& stage)
      -> const StageEntry* {
    const StageEntry* best = nullptr;
    for (const auto& entry : manifest_.entries) {
      if (entry.stage != stage || entry.fingerprint != fp) continue;
      if (blacklist_.count({entry.stage, entry.seq}) != 0) continue;
      if (best == nullptr || entry.seq > best->seq) best = &entry;
    }
    return best;
  };

  std::set<EntryKey> keep;
  for (auto& [fp, order] : groups) {
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return manifest_.entries[a].seq > manifest_.entries[b].seq;
    });
    for (std::size_t i = 0;
         i <
         std::min(order.size(), static_cast<std::size_t>(config_.keep_last));
         ++i) {
      const auto& entry = manifest_.entries[order[i]];
      keep.insert({entry.stage, entry.seq});
    }
    // Keep the group's newest entry's dependency closure so its best
    // resume point stays loadable (conservative round-agnostic closure).
    const auto& newest = manifest_.entries[order[0]];
    for (const auto& dep : load_dependencies(newest.stage, INT_MAX)) {
      if (const auto* e = newest_usable(fp, dep))
        keep.insert({e->stage, e->seq});
    }
  }

  Manifest pruned;
  std::vector<StageEntry> dropped;
  for (auto& entry : manifest_.entries) {
    if (keep.count({entry.stage, entry.seq}) != 0)
      pruned.entries.push_back(entry);
    else
      dropped.push_back(entry);
  }
  if (dropped.empty()) return;
  // Manifest first (the commit point), then the now-unreferenced dirs.
  if (!store_.write_manifest(pruned)) return;
  manifest_ = std::move(pruned);
  for (const auto& entry : dropped) store_.remove_entry(entry);
}

}  // namespace hipmer::ckpt
