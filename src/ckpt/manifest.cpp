#include "ckpt/manifest.hpp"

#include <charconv>
#include <cstring>

#include "io/wire.hpp"
#include "util/hash.hpp"

namespace hipmer::ckpt {

namespace {

// wire-schema: ckpt_aux_stats writer
void put_aux(io::wire::Writer& w, const AuxStats& aux) {
  w.put_u64(aux.distinct_kmers);
  w.put_pod(aux.singleton_fraction);  // wire: pod double
  w.put_u64(aux.heavy_hitters);
  w.put_u64(aux.num_contigs);
  const auto& cs = aux.contig_stats;
  w.put_u64(cs.num_sequences);
  w.put_u64(cs.total_length);
  w.put_u64(cs.min_length);
  w.put_u64(cs.max_length);
  w.put_pod(cs.mean_length);  // wire: pod double
  w.put_u64(cs.n50);
  w.put_u64(cs.l50);
  w.put_u64(cs.n90);
}

// wire-schema: ckpt_aux_stats reader
AuxStats get_aux(io::wire::Reader& r) {
  AuxStats aux;
  aux.distinct_kmers = r.get_u64_checked("aux distinct_kmers");
  aux.singleton_fraction = r.get_pod_checked<double>("aux singleton_fraction");
  aux.heavy_hitters = r.get_u64_checked("aux heavy_hitters");
  aux.num_contigs = r.get_u64_checked("aux num_contigs");
  auto& cs = aux.contig_stats;
  cs.num_sequences =
      static_cast<std::size_t>(r.get_u64_checked("aux num_sequences"));
  cs.total_length = r.get_u64_checked("aux total_length");
  cs.min_length = r.get_u64_checked("aux min_length");
  cs.max_length = r.get_u64_checked("aux max_length");
  cs.mean_length = r.get_pod_checked<double>("aux mean_length");
  cs.n50 = r.get_u64_checked("aux n50");
  cs.l50 = static_cast<std::size_t>(r.get_u64_checked("aux l50"));
  cs.n90 = r.get_u64_checked("aux n90");
  return aux;
}

/// Parse the round suffix of "<prefix>.<round>" names.
bool parse_round_suffix(const std::string& stage, const char* prefix,
                        int& round) {
  const std::string_view sv(stage);
  const std::string_view pv(prefix);
  if (sv.size() <= pv.size() + 1 || sv.substr(0, pv.size()) != pv ||
      sv[pv.size()] != '.')
    return false;
  const char* first = sv.data() + pv.size() + 1;
  const char* last = sv.data() + sv.size();
  auto [ptr, ec] = std::from_chars(first, last, round);
  return ec == std::errc{} && ptr == last && round >= 0;
}

}  // namespace

std::string stage_alignments(int round) {
  return "alignments." + std::to_string(round);
}

std::string stage_scaffolds(int round) {
  return "scaffolds." + std::to_string(round);
}

int stage_progress(const std::string& stage) {
  if (stage == kStageReads) return kProgressReads;
  if (stage == kStageUfx) return kProgressUfx;
  if (stage == kStageContigs) return kProgressContigs;
  int round = 0;
  if (parse_round_suffix(stage, "alignments", round))
    return progress_alignments(round);
  if (parse_round_suffix(stage, "scaffolds", round))
    return progress_scaffolds(round);
  return -1;
}

const StageEntry* Manifest::latest(const std::string& stage) const {
  const StageEntry* best = nullptr;
  for (const auto& entry : entries) {
    if (entry.stage != stage) continue;
    if (best == nullptr || entry.seq > best->seq) best = &entry;
  }
  return best;
}

std::uint64_t Manifest::next_seq() const {
  std::uint64_t next = 0;
  for (const auto& entry : entries) next = std::max(next, entry.seq + 1);
  return next;
}

// wire-schema: ckpt_manifest writer
std::vector<std::byte> encode_manifest(const Manifest& manifest) {
  std::vector<std::byte> buf;
  io::wire::Writer w(buf);
  w.put_u32(kManifestMagic);  // wire: magic kManifestMagic
  w.put_u32(kManifestVersion);
  w.put_u32(static_cast<std::uint32_t>(manifest.entries.size()));
  for (const auto& entry : manifest.entries) {
    w.put_bytes(entry.stage);
    w.put_u64(entry.seq);
    w.put_u64(entry.fingerprint);
    w.put_u32(entry.shard_count);
    for (std::uint32_t s = 0; s < entry.shard_count; ++s) {
      w.put_u64(entry.shard_bytes[s]);
      w.put_u32(entry.shard_crcs[s]);
    }
    put_aux(w, entry.aux);
  }
  w.put_u32(util::crc32c(buf.data(), buf.size()));  // wire: crc32
  return buf;
}

// wire-schema: ckpt_manifest reader
std::optional<Manifest> decode_manifest(const std::vector<std::byte>& bytes) {
  if (bytes.size() < sizeof(std::uint32_t)) return std::nullopt;
  // Verify the trailing CRC over everything before it, first: no field of a
  // corrupt manifest is worth interpreting.
  // wire: crc32
  const std::size_t body = bytes.size() - sizeof(std::uint32_t);
  std::uint32_t stored = 0;
  std::memcpy(&stored, bytes.data() + body, sizeof stored);
  if (util::crc32c(bytes.data(), body) != stored) return std::nullopt;

  io::wire::Reader r(bytes.data(), body);
  try {
    const auto magic =
        r.get_u32_checked("manifest magic");  // wire: magic kManifestMagic
    if (magic != kManifestMagic) return std::nullopt;
    if (r.get_u32_checked("manifest version") != kManifestVersion)
      return std::nullopt;
    const std::uint32_t count = r.get_u32_checked("entry count");
    Manifest manifest;
    manifest.entries.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      StageEntry entry;
      entry.stage = r.get_bytes_checked("entry stage");
      entry.seq = r.get_u64_checked("entry seq");
      entry.fingerprint = r.get_u64_checked("entry fingerprint");
      entry.shard_count = r.get_u32_checked("entry shard count");
      if (entry.shard_count > (1u << 24)) return std::nullopt;
      entry.shard_bytes.resize(entry.shard_count);
      entry.shard_crcs.resize(entry.shard_count);
      for (std::uint32_t s = 0; s < entry.shard_count; ++s) {
        entry.shard_bytes[s] = r.get_u64_checked("shard bytes");
        entry.shard_crcs[s] = r.get_u32_checked("shard crc");
      }
      entry.aux = get_aux(r);
      manifest.entries.push_back(std::move(entry));
    }
    if (!r.done()) return std::nullopt;  // trailing garbage
    return manifest;
  } catch (const io::wire::Error&) {
    return std::nullopt;
  }
}

}  // namespace hipmer::ckpt
