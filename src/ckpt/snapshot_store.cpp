#include "ckpt/snapshot_store.hpp"

#include <fstream>
#include <system_error>

#include "util/hash.hpp"
#include "util/logging.hpp"

namespace hipmer::ckpt {

namespace fs = std::filesystem;

namespace {

/// Write `bytes` to `final_path` via a `.tmp` sibling + atomic rename.
bool write_file_atomic(const fs::path& final_path,
                       const std::byte* data, std::size_t size) {
  const fs::path tmp = final_path.string() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    if (size > 0)
      out.write(reinterpret_cast<const char*>(data),
                static_cast<std::streamsize>(size));
    out.flush();
    if (!out) {
      std::error_code ec;
      fs::remove(tmp, ec);
      return false;
    }
  }
  std::error_code ec;
  fs::rename(tmp, final_path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    return false;
  }
  return true;
}

std::optional<std::vector<std::byte>> read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::error_code ec;
  const auto size = fs::file_size(path, ec);
  if (ec) return std::nullopt;
  std::vector<std::byte> bytes(static_cast<std::size_t>(size));
  if (size > 0) {
    in.read(reinterpret_cast<char*>(bytes.data()),
            static_cast<std::streamsize>(size));
    if (!in) return std::nullopt;
  }
  return bytes;
}

}  // namespace

std::optional<Manifest> SnapshotStore::load_manifest() const {
  const auto bytes = read_file(fs::path(dir_) / "manifest.bin");
  if (!bytes) return std::nullopt;
  auto manifest = decode_manifest(*bytes);
  if (!manifest)
    util::log_warn("ckpt: corrupt manifest at " + dir_ +
                   "/manifest.bin; ignoring all checkpoints");
  return manifest;
}

bool SnapshotStore::write_manifest(const Manifest& manifest) const {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) return false;
  const auto bytes = encode_manifest(manifest);
  return write_file_atomic(fs::path(dir_) / "manifest.bin", bytes.data(),
                           bytes.size());
}

fs::path SnapshotStore::entry_dir(const StageEntry& entry) const {
  return fs::path(dir_) / (entry.stage + "." + std::to_string(entry.seq));
}

fs::path SnapshotStore::shard_path(const StageEntry& entry,
                                   std::uint32_t shard) const {
  return entry_dir(entry) / ("shard." + std::to_string(shard));
}

bool SnapshotStore::prepare_entry(const StageEntry& entry) const {
  std::error_code ec;
  fs::create_directories(entry_dir(entry), ec);
  return !ec;
}

bool SnapshotStore::write_shard(const StageEntry& entry, std::uint32_t shard,
                                const std::vector<std::byte>& payload) const {
  return write_file_atomic(shard_path(entry, shard), payload.data(),
                           payload.size());
}

std::optional<std::vector<std::byte>> SnapshotStore::read_shard(
    const StageEntry& entry, std::uint32_t shard) const {
  if (shard >= entry.shard_count) return std::nullopt;
  auto bytes = read_file(shard_path(entry, shard));
  if (!bytes) return std::nullopt;
  if (bytes->size() != entry.shard_bytes[shard] ||
      util::crc32c(bytes->data(), bytes->size()) != entry.shard_crcs[shard]) {
    util::log_warn("ckpt: shard " + shard_path(entry, shard).string() +
                   " fails size/CRC validation");
    return std::nullopt;
  }
  return bytes;
}

void SnapshotStore::remove_entry(const StageEntry& entry) const {
  std::error_code ec;
  fs::remove_all(entry_dir(entry), ec);
}

}  // namespace hipmer::ckpt
