#include "ckpt/snapshot_store.hpp"

#include <system_error>

#include "io/fs_faults.hpp"
#include "util/hash.hpp"
#include "util/logging.hpp"

namespace hipmer::ckpt {

namespace fs = std::filesystem;

namespace {

/// Durable writes go through the fault-aware shared helper; this layer is
/// exception-free and collapses both failure and simulated crash into
/// "the write did not commit" — the startup sweep reclaims any debris.
bool write_file_atomic(const fs::path& final_path, const std::byte* data,
                       std::size_t size) {
  return io::write_file_atomic(final_path, data, size) ==
         io::AtomicWriteStatus::kOk;
}

}  // namespace

std::size_t SnapshotStore::sweep_orphans() const {
  return io::sweep_tmp_files(dir_);
}

std::optional<Manifest> SnapshotStore::load_manifest() const {
  const auto bytes = io::read_file(fs::path(dir_) / "manifest.bin");
  if (!bytes) return std::nullopt;
  auto manifest = decode_manifest(*bytes);
  if (!manifest)
    util::log_warn("ckpt: corrupt manifest at " + dir_ +
                   "/manifest.bin; ignoring all checkpoints");
  return manifest;
}

bool SnapshotStore::write_manifest(const Manifest& manifest) const {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) return false;
  const auto bytes = encode_manifest(manifest);
  return write_file_atomic(fs::path(dir_) / "manifest.bin", bytes.data(),
                           bytes.size());
}

fs::path SnapshotStore::entry_dir(const StageEntry& entry) const {
  return fs::path(dir_) / (entry.stage + "." + std::to_string(entry.seq));
}

fs::path SnapshotStore::shard_path(const StageEntry& entry,
                                   std::uint32_t shard) const {
  return entry_dir(entry) / ("shard." + std::to_string(shard));
}

bool SnapshotStore::prepare_entry(const StageEntry& entry) const {
  std::error_code ec;
  fs::create_directories(entry_dir(entry), ec);
  return !ec;
}

bool SnapshotStore::write_shard(const StageEntry& entry, std::uint32_t shard,
                                const std::vector<std::byte>& payload) const {
  return write_file_atomic(shard_path(entry, shard), payload.data(),
                           payload.size());
}

std::optional<std::vector<std::byte>> SnapshotStore::read_shard(
    const StageEntry& entry, std::uint32_t shard) const {
  if (shard >= entry.shard_count) return std::nullopt;
  auto bytes = io::read_file(shard_path(entry, shard));
  if (!bytes) return std::nullopt;
  if (bytes->size() != entry.shard_bytes[shard] ||
      util::crc32c(bytes->data(), bytes->size()) != entry.shard_crcs[shard]) {
    util::log_warn("ckpt: shard " + shard_path(entry, shard).string() +
                   " fails size/CRC validation");
    return std::nullopt;
  }
  return bytes;
}

void SnapshotStore::remove_entry(const StageEntry& entry) const {
  std::error_code ec;
  fs::remove_all(entry_dir(entry), ec);
}

}  // namespace hipmer::ckpt
