#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "align/alignment.hpp"
#include "dbg/contig.hpp"
#include "io/fasta.hpp"
#include "kcount/ufx_io.hpp"
#include "scaffold/insert_size.hpp"
#include "scaffold/sequence_builder.hpp"
#include "seq/read.hpp"
#include "seq/read_store.hpp"

/// Binary payloads for the five inter-stage artifacts the pipeline
/// checkpoints: the distributed read set, the k-mer spectrum (UFX), contigs
/// with depths and termination info, read-to-contig alignments, and
/// per-round scaffold state. Framing reuses io/wire.hpp; each payload leads
/// with a magic u32 and record counts, so every decoder can reject a
/// truncated or wrong-type payload instead of misparsing it (the CRC layer
/// in SnapshotStore catches bit flips; these checks catch logic-level
/// mix-ups and make the decoders safe on any byte string).
///
/// One payload = one writer rank's shard. The `reshard_*` helpers remap a
/// decoded shard set onto a resume team of a different size; for the same
/// size they are the identity, so a same-team resume replays the exact
/// distribution the writer had.
namespace hipmer::ckpt {

inline constexpr std::uint32_t kReadsMagic = 0x31534452;   // "RDS1"
inline constexpr std::uint32_t kPackedReadsMagic = 0x31504452;  // "RDP1"
inline constexpr std::uint32_t kUfxMagic = 0x31584655;     // "UFX1"
inline constexpr std::uint32_t kContigsMagic = 0x31475443;  // "CTG1"
// "ALN2": v2 writes ReadAlignment field-wise (align/alignment_wire.hpp)
// instead of a whole-struct put_pod that shipped 7 padding bytes per record.
inline constexpr std::uint32_t kAlignMagic = 0x324e4c41;   // "ALN2"
inline constexpr std::uint32_t kScaffMagic = 0x31464353;   // "SCF1"

// ---- reads: one rank's share of every library ----

[[nodiscard]] std::vector<std::byte> encode_reads_shard(
    const std::vector<std::vector<seq::Read>>& libs);

/// Same "RDS1" string format, sourced from ReadStores (packed stores are
/// decoded record by record). The pipeline uses this when --packed-reads
/// is off; with it on, the packed shard below is written instead.
[[nodiscard]] std::vector<std::byte> encode_reads_shard(
    const std::vector<seq::ReadStore>& libs);

/// Packed variant ("RDP1"): 2-bit words + exception list + RLE quals per
/// read, written when the pipeline runs with --packed-reads. Roughly 4x
/// smaller on disk than the string shard for typical short-read data. A
/// plain (string) store is packed on the fly.
[[nodiscard]] std::vector<std::byte> encode_packed_reads_shard(
    const std::vector<seq::ReadStore>& libs);

/// Decodes either shard flavor (dispatch on the leading magic), so resume
/// works across runs that toggled --packed-reads.
[[nodiscard]] std::optional<std::vector<std::vector<seq::Read>>>
decode_reads_shard(const std::vector<std::byte>& bytes);

/// Remap writer shards ([shard][lib][reads]) onto `p` resume ranks,
/// returning [rank][lib][reads]. Identity when p == shards.size();
/// otherwise pairs (consecutive reads) are enumerated deterministically
/// and dealt by pair key % p, keyed on the read-name pair index when every
/// name parses (so alignments resharded by pair_id land on the same rank —
/// gap closing matches reads to alignments locally).
[[nodiscard]] std::vector<std::vector<std::vector<seq::Read>>> reshard_reads(
    std::vector<std::vector<std::vector<seq::Read>>> shards, int p);

// ---- ufx: one rank's shard of the k-mer spectrum ----

[[nodiscard]] std::vector<std::byte> encode_ufx_shard(
    const std::vector<kcount::UfxRecord>& records);
[[nodiscard]] std::optional<std::vector<kcount::UfxRecord>> decode_ufx_shard(
    const std::vector<std::byte>& bytes);

// ---- contigs (with depths + termination) ----

[[nodiscard]] std::vector<std::byte> encode_contigs_shard(
    const std::vector<const dbg::Contig*>& contigs);
[[nodiscard]] std::optional<std::vector<dbg::Contig>> decode_contigs_shard(
    const std::vector<std::byte>& bytes);

// ---- alignments ----

[[nodiscard]] std::vector<std::byte> encode_alignments_shard(
    const std::vector<align::ReadAlignment>& alignments);
[[nodiscard]] std::optional<std::vector<align::ReadAlignment>>
decode_alignments_shard(const std::vector<std::byte>& bytes);

/// Identity when p == shards.size(); otherwise flatten, sort into a
/// canonical order and deal by pair_id % p (colocating each pair's
/// alignments with its reads under reshard_reads' keying).
[[nodiscard]] std::vector<std::vector<align::ReadAlignment>>
reshard_alignments(std::vector<std::vector<align::ReadAlignment>> shards,
                   int p);

// ---- per-round scaffold state ----

/// Round-level results that ride with the scaffold records so a resumed run
/// reports them without recomputing earlier rounds.
struct ScaffoldExtras {
  scaffold::ScaffoldStats closure_stats{};
  std::vector<scaffold::InsertSizeEstimate> inserts;
};

/// Record i of the round's scaffold set goes to shard i % nshards; shard 0
/// additionally carries the extras.
[[nodiscard]] std::vector<std::byte> encode_scaffolds_shard(
    const std::vector<io::FastaRecord>& records, int shard, int nshards,
    const ScaffoldExtras* extras);

struct ScaffoldShard {
  /// (global record index, record) pairs held by this shard.
  std::vector<std::pair<std::uint64_t, io::FastaRecord>> records;
  std::optional<ScaffoldExtras> extras;
};

[[nodiscard]] std::optional<ScaffoldShard> decode_scaffolds_shard(
    const std::vector<std::byte>& bytes);

/// Reassemble the full record list in global-index order.
[[nodiscard]] std::vector<io::FastaRecord> merge_scaffold_shards(
    std::vector<ScaffoldShard> shards);

}  // namespace hipmer::ckpt
