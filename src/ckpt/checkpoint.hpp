#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "ckpt/artifacts.hpp"
#include "ckpt/manifest.hpp"
#include "ckpt/snapshot_store.hpp"
#include "pgas/thread_team.hpp"

/// Checkpoint/restart driver used by pipeline::Pipeline.
///
/// Write path: after each stage the pipeline opens an entry
/// (`begin_entry`), every rank writes its own shard concurrently
/// (`write_shard`), and rank 0's serial context commits (`commit`) — which
/// appends to the manifest, atomically rewrites `manifest.bin`, and prunes
/// old entries per `keep_last`. A crash anywhere before the manifest rename
/// leaves the previous manifest in force.
///
/// Read path: `load` walks resume targets from furthest pipeline progress
/// down, checks each candidate entry's config fingerprint, reads and
/// CRC-verifies every shard of the target plus its dependency closure
/// (earlier artifacts the pipeline still needs from that point on), decodes,
/// and re-shards to the current team size. Any validation or decode failure
/// blacklists that entry and retries — falling back to the previous valid
/// stage, and ultimately to full recompute (an empty ResumeState).
namespace hipmer::ckpt {

/// Stage name announced to the fault injector for each snapshot read pass,
/// so tests can kill a rank mid-restore too.
inline constexpr const char* kRestoreFaultStage = "restore";

struct CheckpointConfig {
  /// Run directory; empty disables checkpointing entirely.
  std::string dir;
  enum class Granularity {
    kStage,  ///< snapshot every artifact (reads, ufx, contigs, alignments, scaffolds)
    kRound,  ///< skip the bulky per-round alignments; rounds restart at their top
  };
  Granularity granularity = Granularity::kStage;
  /// Keep only the newest N entries (plus the newest entry's dependency
  /// closure); 0 keeps everything.
  int keep_last = 0;

  [[nodiscard]] bool enabled() const noexcept { return !dir.empty(); }
};

/// Everything the pipeline needs to continue from a resume point. Shard
/// dimensions are already the *current* team's ([rank][...]).
struct ResumeState {
  /// Progress encoding (manifest.hpp); -1 = nothing usable, run from scratch.
  int progress = -1;
  AuxStats aux;

  std::vector<std::vector<std::vector<seq::Read>>> reads;  // [rank][lib]
  std::vector<std::vector<kcount::UfxRecord>> ufx;         // [rank]
  std::vector<std::vector<dbg::Contig>> contigs;           // [rank]

  /// Round whose alignments are loaded (-1 = none).
  int aligned_round = -1;
  std::vector<std::vector<align::ReadAlignment>> alignments;  // [rank]

  /// Round whose scaffold records are loaded (-1 = none).
  int scaffold_round = -1;
  std::vector<io::FastaRecord> scaffolds;
  scaffold::ScaffoldStats closure_stats{};
  std::vector<scaffold::InsertSizeEstimate> inserts;

  [[nodiscard]] bool empty() const noexcept { return progress < 0; }
};

class Checkpointer {
 public:
  /// Loads any existing manifest from `config.dir` at construction.
  /// `fingerprint` is the pipeline's config fingerprint; entries written
  /// under a different fingerprint are invisible to `load`.
  Checkpointer(CheckpointConfig config, std::uint64_t fingerprint);

  [[nodiscard]] const CheckpointConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] const Manifest& manifest() const noexcept { return manifest_; }
  [[nodiscard]] std::uint64_t fingerprint() const noexcept {
    return fingerprint_;
  }

  /// Serial: open a new uncommitted entry (creates its shard directory).
  [[nodiscard]] StageEntry begin_entry(const std::string& stage,
                                       int shard_count, const AuxStats& aux);

  /// Write one shard; callable concurrently for distinct shards (each rank
  /// writes its own). Records the shard's size and CRC in the entry.
  bool write_shard(StageEntry& entry, int shard,
                   const std::vector<std::byte>& payload);

  /// Serial: commit the entry — append to the manifest, atomic-rename the
  /// manifest file, prune. False (and no manifest change) on I/O failure.
  bool commit(StageEntry entry);

  /// Multi-process worker side of a commit: append the entry to this
  /// process's in-memory manifest only (no disk write, no prune), keeping
  /// seq numbering aligned with the primary, which owns manifest.bin.
  void commit_local(StageEntry entry);

  /// Find and load the best resume point at or below `max_progress`
  /// (pass progress_scaffolds(rounds - 1) for no cap). Reads shards in
  /// parallel on `team`; returns an empty state when nothing usable
  /// survives validation.
  [[nodiscard]] ResumeState load(pgas::ThreadTeam& team, int rounds,
                                 int max_progress);

 private:
  using EntryKey = std::pair<std::string, std::uint64_t>;  // (stage, seq)

  /// Latest committed entry for `stage` with a matching fingerprint that
  /// has not been blacklisted by a failed load.
  [[nodiscard]] const StageEntry* usable(const std::string& stage) const;

  /// Read + CRC-verify all shards of one entry, dealt round robin over the
  /// team's ranks. nullopt if any shard fails (caller blacklists).
  [[nodiscard]] std::optional<std::vector<std::vector<std::byte>>> read_entry(
      pgas::ThreadTeam& team, const StageEntry& entry) const;

  void prune();

  CheckpointConfig config_;
  std::uint64_t fingerprint_;
  SnapshotStore store_;
  Manifest manifest_;
  std::set<EntryKey> blacklist_;
};

}  // namespace hipmer::ckpt
