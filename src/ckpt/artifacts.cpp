#include "ckpt/artifacts.hpp"

#include <algorithm>
#include <tuple>

#include "align/alignment_wire.hpp"
#include "dbg/contig_wire.hpp"
#include "io/wire.hpp"
#include "seq/read_name.hpp"

namespace hipmer::ckpt {

namespace {

using io::wire::Reader;
using io::wire::Writer;

/// Reject record counts that could not possibly fit in the remaining bytes
/// (corrupt counts would otherwise trigger huge allocations before the
/// truncation check fires).
bool count_fits(const Reader& r, std::uint64_t n, std::size_t min_record) {
  return n <= r.remaining() / min_record + 1;
}

}  // namespace

// ---- reads ----

// wire-schema: ckpt_reads_shard writer
std::vector<std::byte> encode_reads_shard(
    const std::vector<std::vector<seq::Read>>& libs) {
  std::vector<std::byte> buf;
  Writer w(buf);
  w.put_u32(kReadsMagic);
  w.put_u32(static_cast<std::uint32_t>(libs.size()));
  for (const auto& reads : libs) {
    w.put_u64(reads.size());
    for (const auto& read : reads) io::wire::put_read(w, read);
  }
  return buf;
}

// wire-schema: ckpt_reads_shard writer
std::vector<std::byte> encode_reads_shard(
    const std::vector<seq::ReadStore>& libs) {
  std::vector<std::byte> buf;
  Writer w(buf);
  w.put_u32(kReadsMagic);
  w.put_u32(static_cast<std::uint32_t>(libs.size()));
  std::string seq_scratch;
  std::string qual_scratch;
  for (const auto& store : libs) {
    w.put_u64(store.size());
    for (std::size_t i = 0; i < store.size(); ++i) {
      w.put_bytes(store.name(i));
      w.put_bytes(store.seq(i, seq_scratch));
      w.put_bytes(store.quals(i, qual_scratch));
    }
  }
  return buf;
}

// wire-schema: ckpt_packed_reads_shard writer
std::vector<std::byte> encode_packed_reads_shard(
    const std::vector<seq::ReadStore>& libs) {
  std::vector<std::byte> buf;
  Writer w(buf);
  w.put_u32(kPackedReadsMagic);
  w.put_u32(static_cast<std::uint32_t>(libs.size()));
  seq::PackedReads repacked;
  for (const auto& store : libs) {
    const seq::PackedReads* arena = &store.arena();
    if (!store.packed()) {
      repacked.clear();
      for (const auto& read : store.plain()) repacked.append(read);
      arena = &repacked;
    }
    w.put_u64(arena->size());
    for (std::size_t i = 0; i < arena->size(); ++i) {
      w.put_bytes(arena->name(i));
      const auto view = arena->view(i);
      w.put_u32(view.length);
      for (std::size_t wd = 0; wd < (view.length + 31) / 32; ++wd)
        w.put_u64(view.words[wd]);
      w.put_u32(view.except_count);
      for (std::uint32_t e = 0; e < view.except_count; ++e) {
        w.put_u32(view.except_pos[e]);
        w.put_pod(view.except_chr[e]);  // wire: pod char
      }
      const auto [enc, enc_len] = arena->qual_enc(i);
      w.put_bytes(std::string_view(reinterpret_cast<const char*>(enc),
                                   enc_len));
    }
  }
  return buf;
}

namespace {

// wire-schema: ckpt_packed_reads_shard reader
std::optional<std::vector<std::vector<seq::Read>>> decode_packed_reads_shard(
    Reader& r) {
  // wire: magic kPackedReadsMagic (verified by the decode_reads_shard dispatch)
  const std::uint32_t nlibs = r.get_u32_checked("packed nlibs");
  if (nlibs > (1u << 16)) return std::nullopt;
  std::vector<std::vector<seq::Read>> libs(nlibs);
  std::vector<std::uint64_t> words;
  std::vector<std::uint32_t> exc_pos;
  std::vector<char> exc_chr;
  for (auto& reads : libs) {
    const std::uint64_t n = r.get_u64_checked("packed read count");
    // Minimum framed packed read: name len + length + exc count + qual len.
    if (!count_fits(r, n, 16)) return std::nullopt;
    reads.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) {
      seq::Read read;
      read.name = r.get_bytes_checked("packed read name");
      const std::uint32_t len = r.get_u32_checked("packed seq length");
      if ((len + 31) / 32 > r.remaining() / 8 + 1) return std::nullopt;
      words.resize((len + 31) / 32);
      for (auto& wd : words) wd = r.get_u64_checked("packed seq word");
      const std::uint32_t nexc = r.get_u32_checked("packed exception count");
      if (nexc > len) return std::nullopt;
      exc_pos.resize(nexc);
      exc_chr.resize(nexc);
      for (std::uint32_t e = 0; e < nexc; ++e) {
        exc_pos[e] = r.get_u32_checked("packed exception pos");
        exc_chr[e] = r.get_pod_checked<char>("packed exception chr");
        if (exc_pos[e] >= len) return std::nullopt;
      }
      const std::string enc = r.get_bytes_checked("packed quals");
      const seq::PackedSeqView view{words.data(), len, exc_pos.data(),
                                    exc_chr.data(), nexc};
      seq::decode_packed_seq(view, read.seq);
      seq::decode_quals(reinterpret_cast<const std::uint8_t*>(enc.data()),
                        enc.size(), len, read.quals);
      reads.push_back(std::move(read));
    }
  }
  if (!r.done()) return std::nullopt;
  return libs;
}

// wire-schema: ckpt_reads_shard reader
std::optional<std::vector<std::vector<seq::Read>>> decode_plain_reads_shard(
    Reader& r) {
  // wire: magic kReadsMagic (verified by the decode_reads_shard dispatch)
  const std::uint32_t nlibs = r.get_u32_checked("reads nlibs");
  if (nlibs > (1u << 16)) return std::nullopt;
  std::vector<std::vector<seq::Read>> libs(nlibs);
  for (auto& reads : libs) {
    const std::uint64_t n = r.get_u64_checked("reads count");
    // A framed read is three length-prefixed fields, 12 bytes minimum.
    if (!count_fits(r, n, 12)) return std::nullopt;
    reads.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) {
      reads.push_back(io::wire::get_read_checked(r));
    }
  }
  if (!r.done()) return std::nullopt;
  return libs;
}

}  // namespace

std::optional<std::vector<std::vector<seq::Read>>> decode_reads_shard(
    const std::vector<std::byte>& bytes) {
  Reader r(bytes);
  try {
    const std::uint32_t magic = r.get_u32_checked("reads magic");
    if (magic == kPackedReadsMagic) return decode_packed_reads_shard(r);
    if (magic != kReadsMagic) return std::nullopt;
    return decode_plain_reads_shard(r);
  } catch (const io::wire::Error&) {
    return std::nullopt;
  }
}

std::vector<std::vector<std::vector<seq::Read>>> reshard_reads(
    std::vector<std::vector<std::vector<seq::Read>>> shards, int p) {
  if (static_cast<int>(shards.size()) == p) return shards;

  std::size_t nlibs = 0;
  for (const auto& shard : shards) nlibs = std::max(nlibs, shard.size());

  std::vector<std::vector<std::vector<seq::Read>>> out(
      static_cast<std::size_t>(p),
      std::vector<std::vector<seq::Read>>(nlibs));

  for (std::size_t lib = 0; lib < nlibs; ++lib) {
    struct PairEntry {
      std::uint64_t name_key;
      std::uint64_t fallback_key;
      seq::Read reads[2];
      int n;
    };
    std::vector<PairEntry> pairs;
    bool all_parse = true;
    std::uint64_t enumeration = 0;
    for (auto& shard : shards) {
      if (lib >= shard.size()) continue;
      auto& reads = shard[lib];
      for (std::size_t i = 0; i < reads.size(); i += 2) {
        PairEntry entry;
        entry.fallback_key = enumeration++;
        entry.name_key = entry.fallback_key;
        int mate = 0;
        std::uint64_t pair_index = 0;
        if (seq::parse_read_name(reads[i].name, pair_index, mate))
          entry.name_key = pair_index;
        else
          all_parse = false;
        entry.reads[0] = std::move(reads[i]);
        entry.n = 1;
        if (i + 1 < reads.size()) {
          entry.reads[1] = std::move(reads[i + 1]);
          entry.n = 2;
        }
        pairs.push_back(std::move(entry));
      }
      reads.clear();
    }
    // Keying on the name's pair index keeps each pair's reads on the same
    // rank as its alignments (resharded by pair_id % p); when any name
    // deviates from the convention, fall back to the enumeration order,
    // which is still deterministic and pair-preserving.
    std::stable_sort(pairs.begin(), pairs.end(),
                     [&](const PairEntry& a, const PairEntry& b) {
                       return (all_parse ? a.name_key : a.fallback_key) <
                              (all_parse ? b.name_key : b.fallback_key);
                     });
    for (auto& entry : pairs) {
      const std::uint64_t key =
          all_parse ? entry.name_key : entry.fallback_key;
      auto& dest = out[static_cast<std::size_t>(
          key % static_cast<std::uint64_t>(p))][lib];
      for (int m = 0; m < entry.n; ++m)
        dest.push_back(std::move(entry.reads[m]));
    }
  }
  return out;
}

// ---- ufx ----

// wire-schema: ckpt_ufx_shard writer
std::vector<std::byte> encode_ufx_shard(
    const std::vector<kcount::UfxRecord>& records) {
  std::vector<std::byte> buf;
  Writer w(buf);
  w.put_u32(kUfxMagic);
  w.put_u64(records.size());
  for (const auto& [kmer, summary] : records) {
    w.put_pod(kmer);  // wire: pod seq::KmerT
    w.put_u32(summary.depth);
    w.put_pod(summary.left_ext);   // wire: pod char
    w.put_pod(summary.right_ext);  // wire: pod char
  }
  return buf;
}

// wire-schema: ckpt_ufx_shard reader
std::optional<std::vector<kcount::UfxRecord>> decode_ufx_shard(
    const std::vector<std::byte>& bytes) {
  Reader r(bytes);
  try {
    if (r.get_u32_checked("ufx magic") != kUfxMagic) return std::nullopt;
    const std::uint64_t n = r.get_u64_checked("ufx count");
    constexpr std::size_t kRecordBytes = sizeof(seq::KmerT) + 4 + 2;
    if (!count_fits(r, n, kRecordBytes)) return std::nullopt;
    std::vector<kcount::UfxRecord> records;
    records.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) {
      kcount::UfxRecord record;
      record.first = r.get_pod_checked<seq::KmerT>("ufx kmer");
      record.second.depth = r.get_u32_checked("ufx depth");
      record.second.left_ext = r.get_pod_checked<char>("ufx left ext");
      record.second.right_ext = r.get_pod_checked<char>("ufx right ext");
      records.push_back(record);
    }
    if (!r.done()) return std::nullopt;
    return records;
  } catch (const io::wire::Error&) {
    return std::nullopt;
  }
}

// ---- contigs ----

// wire-schema: ckpt_contigs_shard writer
std::vector<std::byte> encode_contigs_shard(
    const std::vector<const dbg::Contig*>& contigs) {
  std::vector<std::byte> buf;
  Writer w(buf);
  w.put_u32(kContigsMagic);
  w.put_u64(contigs.size());
  for (const auto* contig : contigs) dbg::serialize_contig(buf, *contig);
  return buf;
}

// wire-schema: ckpt_contigs_shard reader
std::optional<std::vector<dbg::Contig>> decode_contigs_shard(
    const std::vector<std::byte>& bytes) {
  Reader r(bytes);
  try {
    if (r.get_u32_checked("contigs magic") != kContigsMagic)
      return std::nullopt;
    const std::uint64_t n = r.get_u64_checked("contigs count");
    if (!count_fits(r, n,
                    sizeof(dbg::ContigWireHeader) + sizeof(std::uint32_t)))
      return std::nullopt;
    std::vector<dbg::Contig> contigs;
    contigs.reserve(static_cast<std::size_t>(n));
    // Count-driven loop (not dbg::deserialize_contigs, which stops silently
    // on a partial trailing record): a record shortfall is corruption here.
    for (std::uint64_t i = 0; i < n; ++i) {
      contigs.push_back(dbg::get_contig_checked(r));
    }
    if (!r.done()) return std::nullopt;
    return contigs;
  } catch (const io::wire::Error&) {
    return std::nullopt;
  }
}

// ---- alignments ----

// wire-schema: ckpt_alignments_shard writer
std::vector<std::byte> encode_alignments_shard(
    const std::vector<align::ReadAlignment>& alignments) {
  std::vector<std::byte> buf;
  Writer w(buf);
  w.put_u32(kAlignMagic);
  w.put_u64(alignments.size());
  for (const auto& a : alignments) align::put_alignment(w, a);
  return buf;
}

// wire-schema: ckpt_alignments_shard reader
std::optional<std::vector<align::ReadAlignment>> decode_alignments_shard(
    const std::vector<std::byte>& bytes) {
  Reader r(bytes);
  try {
    if (r.get_u32_checked("alignments magic") != kAlignMagic)
      return std::nullopt;
    const std::uint64_t n = r.get_u64_checked("alignments count");
    // Field-wise ReadAlignment: 9 x i32/u32 + u64 + u8 = 45 bytes.
    if (!count_fits(r, n, 45)) return std::nullopt;
    std::vector<align::ReadAlignment> alignments;
    alignments.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) {
      alignments.push_back(align::get_alignment_checked(r));
    }
    if (!r.done()) return std::nullopt;
    return alignments;
  } catch (const io::wire::Error&) {
    return std::nullopt;
  }
}

std::vector<std::vector<align::ReadAlignment>> reshard_alignments(
    std::vector<std::vector<align::ReadAlignment>> shards, int p) {
  if (static_cast<int>(shards.size()) == p) return shards;
  std::vector<align::ReadAlignment> all;
  for (auto& shard : shards) {
    all.insert(all.end(), shard.begin(), shard.end());
    shard.clear();
  }
  const auto key = [](const align::ReadAlignment& a) {
    return std::make_tuple(a.library, a.pair_id, a.mate, a.read_start,
                           a.read_end, a.contig_id, a.contig_start,
                           a.contig_end, a.score);
  };
  std::stable_sort(all.begin(), all.end(),
                   [&](const align::ReadAlignment& a,
                       const align::ReadAlignment& b) {
                     return key(a) < key(b);
                   });
  std::vector<std::vector<align::ReadAlignment>> out(
      static_cast<std::size_t>(p));
  for (const auto& a : all)
    out[static_cast<std::size_t>(a.pair_id % static_cast<std::uint64_t>(p))]
        .push_back(a);
  return out;
}

// ---- scaffolds ----

// wire-schema: ckpt_scaffolds_shard writer
std::vector<std::byte> encode_scaffolds_shard(
    const std::vector<io::FastaRecord>& records, int shard, int nshards,
    const ScaffoldExtras* extras) {
  std::vector<std::byte> buf;
  Writer w(buf);
  w.put_u32(kScaffMagic);
  w.put_pod<std::uint8_t>(extras != nullptr ? 1 : 0);
  if (extras != nullptr) {
    w.put_pod(extras->closure_stats);  // wire: pod scaffold::ScaffoldStats
    w.put_u32(static_cast<std::uint32_t>(extras->inserts.size()));
    for (const auto& est : extras->inserts)
      w.put_pod(est);  // wire: pod scaffold::InsertSizeEstimate
  }
  std::uint64_t mine = 0;
  for (std::size_t i = static_cast<std::size_t>(shard); i < records.size();
       i += static_cast<std::size_t>(nshards))
    ++mine;
  w.put_u64(mine);
  for (std::size_t i = static_cast<std::size_t>(shard); i < records.size();
       i += static_cast<std::size_t>(nshards)) {
    w.put_u64(i);
    w.put_bytes(records[i].name);
    w.put_bytes(records[i].seq);
  }
  return buf;
}

// wire-schema: ckpt_scaffolds_shard reader
std::optional<ScaffoldShard> decode_scaffolds_shard(
    const std::vector<std::byte>& bytes) {
  Reader r(bytes);
  try {
    if (r.get_u32_checked("scaffolds magic") != kScaffMagic)
      return std::nullopt;
    ScaffoldShard shard;
    const auto has_extras = r.get_pod_checked<std::uint8_t>("extras flag");
    if (has_extras > 1) return std::nullopt;
    if (has_extras != 0) {
      ScaffoldExtras extras;
      extras.closure_stats =
          r.get_pod_checked<scaffold::ScaffoldStats>("closure stats");
      const std::uint32_t n_inserts = r.get_u32_checked("insert count");
      if (!count_fits(r, n_inserts, sizeof(scaffold::InsertSizeEstimate)))
        return std::nullopt;
      extras.inserts.reserve(n_inserts);
      for (std::uint32_t i = 0; i < n_inserts; ++i) {
        extras.inserts.push_back(
            r.get_pod_checked<scaffold::InsertSizeEstimate>("insert estimate"));
      }
      shard.extras = std::move(extras);
    }
    const std::uint64_t n = r.get_u64_checked("scaffold count");
    // Record minimum: u64 index + two length prefixes.
    if (!count_fits(r, n, 16)) return std::nullopt;
    shard.records.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) {
      const std::uint64_t index = r.get_u64_checked("scaffold index");
      io::FastaRecord record;
      record.name = r.get_bytes_checked("scaffold name");
      record.seq = r.get_bytes_checked("scaffold seq");
      shard.records.emplace_back(index, std::move(record));
    }
    if (!r.done()) return std::nullopt;
    return shard;
  } catch (const io::wire::Error&) {
    return std::nullopt;
  }
}

std::vector<io::FastaRecord> merge_scaffold_shards(
    std::vector<ScaffoldShard> shards) {
  std::vector<std::pair<std::uint64_t, io::FastaRecord>> all;
  for (auto& shard : shards) {
    for (auto& rec : shard.records) all.push_back(std::move(rec));
    shard.records.clear();
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
  std::vector<io::FastaRecord> out;
  out.reserve(all.size());
  for (auto& [index, record] : all) out.push_back(std::move(record));
  return out;
}

}  // namespace hipmer::ckpt
