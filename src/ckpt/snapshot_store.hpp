#pragma once

#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "ckpt/manifest.hpp"

/// Filesystem layer of the checkpoint subsystem.
///
/// Layout under the run directory:
///
///     <dir>/manifest.bin            committed manifest (see manifest.hpp)
///     <dir>/<stage>.<seq>/shard.<i> raw artifact payload, one per writer rank
///
/// Crash-consistency discipline: every durable write lands in a `.tmp`
/// sibling first and is committed by `std::filesystem::rename`, which is
/// atomic within a filesystem. Shards are renamed before the manifest entry
/// that references them, and the manifest rename is the commit point — a
/// crash at any instant leaves either the old manifest (orphan shard files,
/// ignored) or the new one (all referenced shards already in place).
///
/// All methods are exception-free: filesystem errors surface as false /
/// nullopt so a sick disk degrades checkpointing, never the assembly.
namespace hipmer::ckpt {

class SnapshotStore {
 public:
  explicit SnapshotStore(std::string dir) : dir_(std::move(dir)) {}

  [[nodiscard]] const std::string& dir() const noexcept { return dir_; }

  /// Remove orphaned `*.tmp` files under the run directory — debris from a
  /// crash between temp write and commit rename. Returns the count removed.
  std::size_t sweep_orphans() const;

  /// Read and verify `<dir>/manifest.bin`. nullopt when absent, unreadable
  /// or failing its CRC — a corrupt manifest means "no checkpoints".
  [[nodiscard]] std::optional<Manifest> load_manifest() const;

  /// Encode and commit the manifest (tmp + rename). Creates the run
  /// directory if needed.
  bool write_manifest(const Manifest& manifest) const;

  [[nodiscard]] std::filesystem::path entry_dir(const StageEntry& entry) const;
  [[nodiscard]] std::filesystem::path shard_path(const StageEntry& entry,
                                                 std::uint32_t shard) const;

  /// Create the entry's shard directory (serial, before parallel writes).
  bool prepare_entry(const StageEntry& entry) const;

  /// Write one shard payload (tmp + rename). Safe to call concurrently for
  /// distinct shards of the same entry.
  bool write_shard(const StageEntry& entry, std::uint32_t shard,
                   const std::vector<std::byte>& payload) const;

  /// Read one shard back, verifying its size and CRC-32C against the
  /// manifest entry. nullopt on any mismatch: a flipped byte or truncated
  /// file is detected here, never surfaced as data.
  [[nodiscard]] std::optional<std::vector<std::byte>> read_shard(
      const StageEntry& entry, std::uint32_t shard) const;

  /// Best-effort recursive delete of the entry's directory (pruning).
  void remove_entry(const StageEntry& entry) const;

 private:
  std::string dir_;
};

}  // namespace hipmer::ckpt
