#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/stats.hpp"

/// Checkpoint manifest: the versioned index of committed stage snapshots.
///
/// A checkpoint run directory holds one `manifest.bin` plus one directory
/// per committed snapshot (`<stage>.<seq>/shard.<i>`). The manifest is the
/// *only* source of truth: a shard directory not referenced by a committed
/// manifest entry does not exist as far as resume is concerned (that is
/// what makes temp-file + atomic-rename commits crash-consistent — a crash
/// mid-snapshot leaves orphan files, never a manifest pointing at torn
/// data).
///
/// Each entry records the stage name, a monotonic commit sequence number, a
/// config fingerprint (k, stage parameters, library set — see
/// pipeline.cpp's fingerprint rules), the writer's shard count (the team
/// size at write time; resume re-shards to the current team), and per-shard
/// byte counts + CRC-32C checksums. The manifest itself carries a trailing
/// CRC-32C over its own encoding, so a flipped byte anywhere — entry,
/// count, or checksum field — makes the whole manifest unloadable rather
/// than partially believable.
namespace hipmer::ckpt {

inline constexpr std::uint32_t kManifestMagic = 0x48434b50;  // "HCKP"
inline constexpr std::uint32_t kManifestVersion = 1;

/// Canonical stage names of the five inter-stage artifacts.
inline constexpr const char* kStageReads = "reads";
inline constexpr const char* kStageUfx = "ufx";
inline constexpr const char* kStageContigs = "contigs";
[[nodiscard]] std::string stage_alignments(int round);
[[nodiscard]] std::string stage_scaffolds(int round);

/// Total order over resume points: reads < ufx < contigs < alignments.0 <
/// scaffolds.0 < alignments.1 < ... A higher value resumes further into
/// the pipeline.
inline constexpr int kProgressReads = 0;
inline constexpr int kProgressUfx = 1;
inline constexpr int kProgressContigs = 2;
[[nodiscard]] constexpr int progress_alignments(int round) {
  return 3 + 2 * round;
}
[[nodiscard]] constexpr int progress_scaffolds(int round) {
  return 4 + 2 * round;
}
[[nodiscard]] constexpr bool progress_is_alignments(int progress) {
  return progress >= 3 && (progress - 3) % 2 == 0;
}
[[nodiscard]] constexpr bool progress_is_scaffolds(int progress) {
  return progress >= 4 && (progress - 4) % 2 == 0;
}
/// Round of an alignments/scaffolds progress point (meaningless below 3).
[[nodiscard]] constexpr int progress_round(int progress) {
  return progress_is_alignments(progress) ? (progress - 3) / 2
                                          : (progress - 4) / 2;
}
/// Progress encoding of a stage name, or -1 if the name is not a
/// checkpointable stage.
[[nodiscard]] int stage_progress(const std::string& stage);

/// Small pipeline statistics carried forward with every snapshot so a
/// resumed run reports them without recomputing the stages that produced
/// them (the scaffold bytes are what must match; these are bookkeeping).
struct AuxStats {
  std::uint64_t distinct_kmers = 0;
  double singleton_fraction = 0.0;
  std::uint64_t heavy_hitters = 0;
  std::uint64_t num_contigs = 0;
  util::AssemblyStats contig_stats{};
};

struct StageEntry {
  std::string stage;
  /// Monotonic commit sequence; among entries with the same stage name the
  /// highest seq wins.
  std::uint64_t seq = 0;
  std::uint64_t fingerprint = 0;
  std::uint32_t shard_count = 0;
  std::vector<std::uint64_t> shard_bytes;
  std::vector<std::uint32_t> shard_crcs;
  AuxStats aux;
};

struct Manifest {
  std::vector<StageEntry> entries;

  /// Newest committed entry for a stage name, or nullptr.
  [[nodiscard]] const StageEntry* latest(const std::string& stage) const;
  [[nodiscard]] std::uint64_t next_seq() const;
};

/// Encode to the wire format described above (CRC-32C trailer included).
[[nodiscard]] std::vector<std::byte> encode_manifest(const Manifest& manifest);

/// Decode and verify; nullopt on bad magic/version, truncation, or CRC
/// mismatch — a corrupt manifest is never partially loaded.
[[nodiscard]] std::optional<Manifest> decode_manifest(
    const std::vector<std::byte>& bytes);

}  // namespace hipmer::ckpt
