// Lossy-transport layer: envelope framing, the seq/ack/dedup/reorder state
// machine, retry + backoff + suspect-peer escalation, chaos determinism —
// plus the wire-reader hardening, FaultInjector::trip and the aggregating
// engine's exception-safety invariant the transport depends on.

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "io/wire.hpp"
#include "pgas/aggregating_engine.hpp"
#include "pgas/chaos.hpp"
#include "pgas/comm_stats.hpp"
#include "pgas/fault.hpp"
#include "pgas/transport.hpp"

namespace hipmer {
namespace {

using pgas::ChaosPlan;
using pgas::ChaosProbs;
using pgas::Envelope;
using pgas::Transport;

// ---- wire reader hardening ----

TEST(Wire, RequireNamesTheMissingField) {
  const std::byte bytes[4] = {};
  io::wire::Reader r(bytes, sizeof bytes);
  try {
    (void)r.get_pod_checked<std::uint64_t>("frob count");
    FAIL() << "expected TruncatedError";
  } catch (const io::wire::TruncatedError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("frob count"), std::string::npos) << what;
    EXPECT_NE(what.find("needs 8"), std::string::npos) << what;
    EXPECT_NE(what.find("4 remain"), std::string::npos) << what;
  }
}

TEST(Wire, CheckedReadsMatchUnchecked) {
  std::vector<std::byte> buf;
  io::wire::Writer w(buf);
  w.put_u32(0xabcd1234u);
  w.put_u64(0x1122334455667788ull);
  io::wire::Reader r(buf.data(), buf.size());
  EXPECT_EQ(r.get_pod_checked<std::uint32_t>("a"), 0xabcd1234u);
  EXPECT_EQ(r.get_pod_checked<std::uint64_t>("b"), 0x1122334455667788ull);
  EXPECT_TRUE(r.done());
}

TEST(Wire, TruncatedErrorIsDistinctFromCorruptError) {
  // Both derive wire::Error, so callers can distinguish "ran off the end"
  // from "failed validation" — or catch the family in one handler.
  const io::wire::TruncatedError trunc("x", 8, 3);
  const io::wire::CorruptError corrupt("wire: corrupt: test");
  const io::wire::Error* as_base = &trunc;
  EXPECT_NE(dynamic_cast<const io::wire::TruncatedError*>(as_base), nullptr);
  EXPECT_EQ(dynamic_cast<const io::wire::CorruptError*>(as_base), nullptr);
  EXPECT_NE(std::string(corrupt.what()).find("corrupt"), std::string::npos);
}

// ---- envelope codec ----

std::vector<std::byte> payload_of(std::uint64_t v) {
  std::vector<std::byte> p(sizeof v);
  std::memcpy(p.data(), &v, sizeof v);
  return p;
}

TEST(Envelope, RoundTrip) {
  Envelope env;
  env.channel = 7;
  env.src = 2;
  env.dst = 3;
  env.seq = 0x00c0ffee;
  env.payload = payload_of(0xdeadbeefcafef00dull);
  const auto wire = pgas::frame_envelope(env);
  const auto back = pgas::decode_envelope(wire.data(), wire.size());
  EXPECT_EQ(back.channel, env.channel);
  EXPECT_EQ(back.src, env.src);
  EXPECT_EQ(back.dst, env.dst);
  EXPECT_EQ(back.seq, env.seq);
  EXPECT_EQ(back.payload, env.payload);
}

TEST(Envelope, EveryBitFlipIsRejected) {
  Envelope env;
  env.channel = 1;
  env.src = 0;
  env.dst = 1;
  env.seq = 42;
  env.payload = payload_of(0x0123456789abcdefull);
  const auto wire = pgas::frame_envelope(env);
  for (std::size_t i = 0; i < wire.size(); ++i) {
    auto bad = wire;
    bad[i] ^= std::byte{0x40};
    EXPECT_THROW((void)pgas::decode_envelope(bad.data(), bad.size()),
                 io::wire::Error)
        << "offset " << i;
  }
}

TEST(Envelope, TruncationReportsTruncatedNotCorrupt) {
  Envelope env;
  env.channel = 1;
  env.src = 0;
  env.dst = 1;
  env.seq = 0;
  env.payload = payload_of(99);
  const auto wire = pgas::frame_envelope(env);
  // Cutting the CRC off the end runs the reader out of bytes: the error
  // must say *which* field was being read, not claim corruption.
  try {
    (void)pgas::decode_envelope(wire.data(), wire.size() - 4);
    FAIL() << "expected TruncatedError";
  } catch (const io::wire::TruncatedError& e) {
    EXPECT_NE(std::string(e.what()).find("envelope crc"), std::string::npos);
  }
  // Trailing garbage after a valid frame is corruption, not truncation.
  auto padded = wire;
  padded.push_back(std::byte{0});
  EXPECT_THROW((void)pgas::decode_envelope(padded.data(), padded.size()),
               io::wire::CorruptError);
}

// ---- FaultInjector::trip ----

TEST(Fault, TripMakesEveryRankThrow) {
  pgas::FaultInjector faults;
  EXPECT_FALSE(faults.fired());
  EXPECT_NO_THROW(faults.on_fault_point(0));
  faults.trip();
  EXPECT_TRUE(faults.fired());
  EXPECT_THROW(faults.on_fault_point(0), pgas::RankKilled);
  EXPECT_THROW(faults.on_fault_point(3), pgas::RankKilled);
  faults.clear();
  EXPECT_FALSE(faults.fired());
  EXPECT_NO_THROW(faults.on_fault_point(0));
}

TEST(Fault, TripIsVisibleAcrossThreads) {
  // Release store in trip(), acquire load in fired()/on_fault_point: a
  // tripper's preceding writes must be visible to the observer. The TSan CI
  // job gives this test teeth; here we assert the handshake completes.
  pgas::FaultInjector faults;
  std::atomic<int> observed{0};
  int shared_state = 0;
  std::thread observer([&] {
    while (!faults.fired()) std::this_thread::yield();
    observed.store(shared_state, std::memory_order_relaxed);
  });
  shared_state = 7;  // published by trip()'s release store
  faults.trip();
  observer.join();
  EXPECT_EQ(observed.load(), 7);
}

// ---- aggregating engine: exception safety + clear ----

TEST(Engine, ThrowingFlushDoesNotResendTheBatch) {
  pgas::AggregatingEngine<int> engine(2, 4);
  std::vector<int> applied;
  bool arm_throw = true;
  auto handler = [&](std::uint32_t, std::vector<int>& ops) {
    for (int op : ops) applied.push_back(op);
    if (arm_throw) throw std::runtime_error("handler died mid-drain");
  };
  for (int i = 0; i < 3; ++i) engine.enqueue(0, 1, i, handler);
  EXPECT_THROW(engine.enqueue(0, 1, 3, handler), std::runtime_error);
  // The batch was handed over (and partially applied) before the throw; it
  // must NOT linger in the buffer to be re-applied by a retry or flush.
  EXPECT_EQ(applied, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(engine.pending(0), 0u);
  arm_throw = false;
  engine.flush(0, handler);
  EXPECT_EQ(applied, (std::vector<int>{0, 1, 2, 3}));  // nothing re-applied
  // The engine still works for fresh ops afterwards.
  engine.enqueue(0, 1, 7, handler);
  engine.flush(0, handler);
  EXPECT_EQ(applied.back(), 7);
  EXPECT_EQ(engine.pending(0), 0u);
}

TEST(Engine, ThrowingExplicitFlushDropsOnlyTheShippedBatch) {
  pgas::AggregatingEngine<int> engine(3, 100);
  std::vector<std::pair<std::uint32_t, int>> applied;
  int calls = 0;
  auto handler = [&](std::uint32_t dest, std::vector<int>& ops) {
    ++calls;
    for (int op : ops) applied.emplace_back(dest, op);
    if (calls == 1) throw std::runtime_error("first destination failed");
  };
  engine.enqueue(0, 1, 10, handler);
  engine.enqueue(0, 2, 20, handler);
  EXPECT_THROW(engine.flush(0, handler), std::runtime_error);
  // One destination shipped (then threw); the other is still pending and a
  // second flush delivers it exactly once.
  EXPECT_EQ(applied.size(), 1u);
  EXPECT_EQ(engine.pending(0), 1u);
  engine.flush(0, handler);
  EXPECT_EQ(applied.size(), 2u);
  EXPECT_EQ(engine.pending(0), 0u);
}

TEST(Engine, ClearDropsBufferedOpsWithoutShipping) {
  pgas::AggregatingEngine<int> engine(2, 100);
  int shipped = 0;
  auto handler = [&](std::uint32_t, std::vector<int>& ops) {
    shipped += static_cast<int>(ops.size());
  };
  engine.enqueue(0, 1, 1, handler);
  engine.enqueue(0, 1, 2, handler);
  EXPECT_EQ(engine.pending(0), 2u);
  engine.clear(0);
  EXPECT_EQ(engine.pending(0), 0u);
  engine.flush(0, handler);
  EXPECT_EQ(shipped, 0);
}

// ---- transport harness ----

struct Harness {
  pgas::FaultInjector faults;
  Transport tp{4, faults};
  pgas::CommStats stats;
  /// Delivered (dst, value) pairs, in delivery order.
  std::vector<std::pair<int, std::uint64_t>> log;

  auto deliver() {
    return [this](int dst, const std::byte* data, std::size_t size) {
      ASSERT_EQ(size, sizeof(std::uint64_t));
      std::uint64_t v = 0;
      std::memcpy(&v, data, size);
      log.emplace_back(dst, v);
    };
  }

  void send(int src, int dst, Transport::ChannelId ch, std::uint64_t v) {
    tp.send(src, dst, ch, payload_of(v), stats, deliver());
  }

  void drain(int src, Transport::ChannelId ch) {
    tp.drain(src, ch, stats, deliver());
  }

  void arm(ChaosProbs probs, std::uint64_t seed) {
    ChaosPlan plan;
    plan.seed = seed;
    plan.defaults = probs;
    tp.set_plan(plan);
  }

  /// Per-destination values, in delivery order.
  std::vector<std::uint64_t> delivered_to(int dst) const {
    std::vector<std::uint64_t> out;
    for (const auto& [d, v] : log)
      if (d == dst) out.push_back(v);
    return out;
  }
};

std::vector<std::uint64_t> iota_u64(std::uint64_t n) {
  std::vector<std::uint64_t> v(n);
  for (std::uint64_t i = 0; i < n; ++i) v[i] = i;
  return v;
}

TEST(Transport, CleanFabricDeliversInOrderExactlyOnce) {
  Harness h;
  const auto ch = h.tp.open_channel("test");
  for (std::uint64_t i = 0; i < 100; ++i)
    for (int dst = 0; dst < 4; ++dst) h.send(0, dst, ch, i);
  for (int dst = 0; dst < 4; ++dst)
    EXPECT_EQ(h.delivered_to(dst), iota_u64(100)) << "dst " << dst;
  const auto s = h.stats.snapshot();
  EXPECT_EQ(s.transport_retries, 0u);
  EXPECT_EQ(s.transport_dups, 0u);
  EXPECT_EQ(s.transport_reorders, 0u);
  EXPECT_EQ(s.transport_corrupts, 0u);
  const auto reports = h.tp.channel_reports();
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].attempts_hist[0], 400u);  // everything acked first try
  EXPECT_EQ(reports[0].backoff_ticks, 0u);
}

TEST(Transport, SelfSendsNeverMisbehave) {
  Harness h;
  const auto ch = h.tp.open_channel("test");
  h.arm(ChaosProbs{1.0, 0.0, 0.0, 0.0, 0.0}, 1);  // drop everything
  h.tp.set_max_attempts(3);
  for (std::uint64_t i = 0; i < 10; ++i) h.send(2, 2, ch, i);
  EXPECT_EQ(h.delivered_to(2), iota_u64(10));
  EXPECT_EQ(h.stats.snapshot().transport_retries, 0u);
}

TEST(Transport, DuplicatesAreSuppressedExactlyOnce) {
  Harness h;
  const auto ch = h.tp.open_channel("test");
  h.arm(ChaosProbs{0.0, 1.0, 0.0, 0.0, 0.0}, 7);  // duplicate every envelope
  for (std::uint64_t i = 0; i < 50; ++i) h.send(0, 1, ch, i);
  EXPECT_EQ(h.delivered_to(1), iota_u64(50));
  EXPECT_EQ(h.stats.snapshot().transport_dups, 50u);
  EXPECT_EQ(h.stats.snapshot().transport_retries, 0u);
}

TEST(Transport, LossyLinkRetriesUntilDelivered) {
  Harness h;
  const auto ch = h.tp.open_channel("test");
  h.arm(ChaosProbs{0.4, 0.0, 0.0, 0.0, 0.0}, 11);
  for (std::uint64_t i = 0; i < 200; ++i) h.send(0, 3, ch, i);
  EXPECT_EQ(h.delivered_to(3), iota_u64(200));
  EXPECT_GT(h.stats.snapshot().transport_retries, 0u);
  // Backoff was accounted for every retry.
  const auto reports = h.tp.channel_reports();
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_GT(reports[0].backoff_ticks, 0u);
  EXPECT_GT(reports[0].attempts_hist[1], 0u);  // some needed a 2nd attempt
}

TEST(Transport, CorruptionIsCaughtAndRepairedByRetry) {
  Harness h;
  const auto ch = h.tp.open_channel("test");
  h.arm(ChaosProbs{0.0, 0.0, 0.0, 0.0, 0.5}, 13);
  for (std::uint64_t i = 0; i < 100; ++i) h.send(1, 2, ch, i);
  EXPECT_EQ(h.delivered_to(2), iota_u64(100));
  const auto s = h.stats.snapshot();
  EXPECT_GT(s.transport_corrupts, 0u);
  EXPECT_EQ(s.transport_corrupts, s.transport_retries);
}

TEST(Transport, BlackholedPeerIsDeclaredSuspect) {
  Harness h;
  const auto ch = h.tp.open_channel("test");
  ChaosPlan plan;
  plan.seed = 3;
  plan.blackholes.push_back(pgas::BlackholeRule{2, "contig_generation", 0});
  h.tp.set_plan(plan);
  h.tp.set_max_attempts(5);

  // Before the stage begins, the rule is dormant.
  h.tp.begin_stage("kmer_analysis");
  EXPECT_EQ(h.tp.blackholed_rank(), -1);
  h.send(0, 2, ch, 1);
  EXPECT_EQ(h.delivered_to(2), std::vector<std::uint64_t>{1});

  h.tp.begin_stage("contig_generation");
  EXPECT_EQ(h.tp.blackholed_rank(), 2);
  try {
    h.send(0, 2, ch, 2);
    FAIL() << "expected PeerSuspect";
  } catch (const pgas::PeerSuspect& e) {
    EXPECT_EQ(e.peer(), 2);
    EXPECT_EQ(e.rank(), 0);
    EXPECT_NE(std::string(e.what()).find("suspect"), std::string::npos);
  }
  EXPECT_EQ(h.tp.suspect_peer(), 2);
  // The whole team is tripped: every rank unwinds via RankKilled.
  EXPECT_TRUE(h.faults.fired());
  EXPECT_THROW(h.faults.on_fault_point(1), pgas::RankKilled);
  // Sends *from* the blackholed rank die too (its NIC is gone, both ways).
  h.faults.clear();
  EXPECT_THROW(h.send(2, 1, ch, 3), pgas::PeerSuspect);
  // Retries were bounded by the deadline — no hang, exactly max_attempts.
  EXPECT_EQ(h.stats.snapshot().transport_retries, 10u);  // 2 suspects x 5
}

TEST(Transport, PeerSuspectIsCatchableAsRankKilled) {
  Harness h;
  const auto ch = h.tp.open_channel("test");
  h.arm(ChaosProbs{1.0, 0.0, 0.0, 0.0, 0.0}, 5);
  h.tp.set_max_attempts(4);
  EXPECT_THROW(h.send(0, 1, ch, 1), pgas::RankKilled);
}

TEST(Transport, ReorderedEnvelopesAreHeldThenSequenced) {
  Harness h;
  const auto ch = h.tp.open_channel("test");
  h.arm(ChaosProbs{0.0, 0.0, 1.0, 0.0, 0.0}, 17);  // hold every envelope
  for (std::uint64_t i = 0; i < 5; ++i) h.send(0, 1, ch, i);
  // Everything is in the network; nothing delivered, nothing lost.
  EXPECT_TRUE(h.log.empty());
  EXPECT_EQ(h.tp.pending(0, ch), 5u);
  h.drain(0, ch);
  EXPECT_EQ(h.delivered_to(1), iota_u64(5));
  EXPECT_EQ(h.tp.pending(0, ch), 0u);
}

TEST(Transport, MixedChaosDeliversExactlyOnceInOrderAcrossSeeds) {
  const ChaosProbs mixed{0.10, 0.05, 0.10, 0.10, 0.05};
  std::uint64_t retries = 0;
  std::uint64_t dups = 0;
  std::uint64_t reorders = 0;
  std::uint64_t corrupts = 0;
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    Harness h;
    const auto ch = h.tp.open_channel("test");
    h.arm(mixed, seed);
    for (std::uint64_t i = 0; i < 60; ++i)
      for (int dst = 1; dst < 4; ++dst) h.send(0, dst, ch, i);
    h.drain(0, ch);
    for (int dst = 1; dst < 4; ++dst)
      ASSERT_EQ(h.delivered_to(dst), iota_u64(60))
          << "seed " << seed << " dst " << dst;
    const auto s = h.stats.snapshot();
    retries += s.transport_retries;
    dups += s.transport_dups;
    reorders += s.transport_reorders;
    corrupts += s.transport_corrupts;
  }
  // Across the sweep every fault kind actually happened.
  EXPECT_GT(retries, 0u);
  EXPECT_GT(dups, 0u);
  EXPECT_GT(reorders, 0u);
  EXPECT_GT(corrupts, 0u);
}

TEST(Transport, SameSeedReplaysTheSameFaults) {
  auto run = [](std::uint64_t seed) {
    Harness h;
    const auto ch = h.tp.open_channel("test");
    h.arm(ChaosProbs{0.2, 0.1, 0.1, 0.1, 0.1}, seed);
    for (std::uint64_t i = 0; i < 100; ++i) h.send(0, 1, ch, i);
    h.drain(0, ch);
    return h.stats.snapshot();
  };
  const auto a = run(42);
  const auto b = run(42);
  const auto c = run(43);
  EXPECT_EQ(a.transport_retries, b.transport_retries);
  EXPECT_EQ(a.transport_dups, b.transport_dups);
  EXPECT_EQ(a.transport_reorders, b.transport_reorders);
  EXPECT_EQ(a.transport_corrupts, b.transport_corrupts);
  // ... and a different seed draws a different schedule.
  EXPECT_FALSE(a.transport_retries == c.transport_retries &&
               a.transport_dups == c.transport_dups &&
               a.transport_reorders == c.transport_reorders &&
               a.transport_corrupts == c.transport_corrupts);
}

TEST(Transport, RetryHistogramNamesTheChannel) {
  Harness h;
  const auto ch = h.tp.open_channel("kcount.counts/store");
  h.arm(ChaosProbs{0.5, 0.0, 0.0, 0.0, 0.0}, 19);
  for (std::uint64_t i = 0; i < 50; ++i) h.send(0, 1, ch, i);
  const std::string report = h.tp.format_retry_histograms();
  EXPECT_NE(report.find("kcount.counts/store"), std::string::npos) << report;
  EXPECT_NE(report.find("backoff"), std::string::npos) << report;
}

TEST(Transport, HandlerExceptionMidApplyIsNotReapplied) {
  // The satellite-4 invariant at the transport level: the receiver advances
  // its expected seq *before* running the apply handler, so an envelope
  // whose handler throws is considered consumed — a retransmit of it dedups
  // rather than double-applying.
  pgas::FaultInjector faults;
  Transport tp(2, faults);
  pgas::CommStats stats;
  const auto ch = tp.open_channel("test");
  int applies = 0;
  bool armed = true;
  auto deliver = [&](int, const std::byte*, std::size_t) {
    ++applies;
    if (armed) throw std::runtime_error("apply failed mid-batch");
  };
  EXPECT_THROW(tp.send(0, 1, ch, payload_of(1), stats, deliver),
               std::runtime_error);
  EXPECT_EQ(applies, 1);
  armed = false;
  // The caller's retry ships the op again under a NEW envelope (the engine
  // moved the batch out); the old seq is consumed, the new one applies once.
  tp.send(0, 1, ch, payload_of(1), stats, deliver);
  EXPECT_EQ(applies, 2);
  EXPECT_EQ(stats.snapshot().transport_dups, 0u);
}

// ---- chaos plan parsing ----

TEST(ChaosPlan, ParseFullGrammar) {
  const auto plan = ChaosPlan::parse(
      99, "drop=0.05,dup=0.02;lookup:corrupt=0.01,delay=0.1;"
          "blackhole=2@merAligner#1;reorder=0.3");
  EXPECT_EQ(plan.seed, 99u);
  // Later default clauses override earlier ones field-for-field? No: each
  // clause is a full ChaosProbs, last default clause wins.
  EXPECT_DOUBLE_EQ(plan.defaults.reorder, 0.3);
  EXPECT_DOUBLE_EQ(plan.defaults.drop, 0.0);
  ASSERT_EQ(plan.per_channel.size(), 1u);
  EXPECT_EQ(plan.per_channel[0].first, "lookup");
  EXPECT_DOUBLE_EQ(plan.per_channel[0].second.corrupt, 0.01);
  EXPECT_DOUBLE_EQ(plan.per_channel[0].second.delay, 0.1);
  ASSERT_EQ(plan.blackholes.size(), 1u);
  EXPECT_EQ(plan.blackholes[0].rank, 2);
  EXPECT_EQ(plan.blackholes[0].stage, "merAligner");
  EXPECT_EQ(plan.blackholes[0].occurrence, 1);
  EXPECT_TRUE(plan.enabled());
  // Channel resolution: substring match, last wins.
  EXPECT_DOUBLE_EQ(plan.resolve("kcount.counts/lookup").corrupt, 0.01);
  EXPECT_DOUBLE_EQ(plan.resolve("kcount.counts/store").reorder, 0.3);
}

TEST(ChaosPlan, ParseRejectsMalformedSpecs) {
  EXPECT_THROW((void)ChaosPlan::parse(1, "drop=2.0"), std::invalid_argument);
  EXPECT_THROW((void)ChaosPlan::parse(1, "drop=-0.1"), std::invalid_argument);
  EXPECT_THROW((void)ChaosPlan::parse(1, "frob=0.1"), std::invalid_argument);
  EXPECT_THROW((void)ChaosPlan::parse(1, "drop"), std::invalid_argument);
  EXPECT_THROW((void)ChaosPlan::parse(1, "drop=abc"), std::invalid_argument);
  EXPECT_THROW((void)ChaosPlan::parse(1, "blackhole=2"), std::invalid_argument);
  EXPECT_THROW((void)ChaosPlan::parse(1, "blackhole=x@io"),
               std::invalid_argument);
  EXPECT_THROW((void)ChaosPlan::parse(1, "blackhole=2@"),
               std::invalid_argument);
}

TEST(ChaosPlan, EmptySpecIsDisabled) {
  const auto plan = ChaosPlan::parse(1, "");
  EXPECT_FALSE(plan.enabled());
  EXPECT_FALSE(ChaosPlan{}.enabled());
  // Zero probabilities keep the plan disabled too.
  const auto zeros = ChaosPlan::parse(1, "drop=0,dup=0.0");
  EXPECT_FALSE(zeros.enabled());
}

TEST(ChaosPlan, FateDrawsAreDeterministicAndExclusive) {
  // 15% per fault kind leaves 25% for clean delivery, so every one of the
  // six buckets should collect a healthy share of 2000 draws.
  const ChaosProbs p{0.15, 0.15, 0.15, 0.15, 0.15};
  int counts[6] = {};
  for (std::uint64_t seq = 0; seq < 2000; ++seq) {
    const auto fate = pgas::chaos_fate(p, 5, 1, 0, 1, seq, 0);
    const auto again = pgas::chaos_fate(p, 5, 1, 0, 1, seq, 0);
    EXPECT_EQ(fate, again);
    ++counts[static_cast<int>(fate)];
  }
  for (int c : counts) EXPECT_GT(c, 100);
  // Retries never draw reorder/delay — they would starve the deadline.
  for (std::uint64_t seq = 0; seq < 2000; ++seq) {
    const auto fate = pgas::chaos_fate(p, 5, 1, 0, 1, seq, 1);
    EXPECT_NE(fate, pgas::ChaosFate::kReorder);
    EXPECT_NE(fate, pgas::ChaosFate::kDelay);
  }
}

}  // namespace
}  // namespace hipmer
