#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <random>
#include <set>

#include "seq/dna.hpp"
#include "seq/extensions.hpp"
#include "seq/kmer.hpp"
#include "seq/kmer_scanner.hpp"
#include "seq/read.hpp"
#include "seq/types.hpp"
#include "sim/read_sim.hpp"

// Global allocation counter: the zero-allocation guarantee of KmerScanner's
// inner loop is asserted by snapshotting this around the scan.
namespace {
std::atomic<std::size_t> g_allocations{0};
}

// GCC flags free() inside a replaced operator delete as mismatched; the
// pairing is correct because the replaced operator new above uses malloc.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void* operator new(std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#pragma GCC diagnostic pop

namespace hipmer::seq {
namespace {

std::string random_dna_string(std::size_t n, std::mt19937_64& rng) {
  static constexpr char bases[4] = {'A', 'C', 'G', 'T'};
  std::string s(n, 'A');
  std::uniform_int_distribution<int> dist(0, 3);
  for (auto& c : s) c = bases[dist(rng)];
  return s;
}

TEST(Dna, BaseCodesRoundTrip) {
  for (char c : {'A', 'C', 'G', 'T'}) {
    EXPECT_EQ(code_to_base(base_to_code(c)), c);
  }
  EXPECT_EQ(base_to_code('N'), kBaseInvalid);
  EXPECT_EQ(base_to_code('a'), kBaseA);
  EXPECT_EQ(base_to_code('t'), kBaseT);
}

TEST(Dna, ComplementIsInvolution) {
  for (std::uint8_t code = 0; code < 4; ++code)
    EXPECT_EQ(complement_code(complement_code(code)), code);
  for (char c : {'A', 'C', 'G', 'T'})
    EXPECT_EQ(complement_base(complement_base(c)), c);
}

TEST(Dna, RevcompKnownValues) {
  EXPECT_EQ(revcomp("ACGT"), "ACGT");  // palindrome
  EXPECT_EQ(revcomp("AAAA"), "TTTT");
  EXPECT_EQ(revcomp("GATTACA"), "TGTAATC");
  EXPECT_EQ(revcomp(""), "");
}

TEST(Dna, RevcompIsInvolutionProperty) {
  std::mt19937_64 rng(11);
  for (int trial = 0; trial < 50; ++trial) {
    const auto s = random_dna_string(1 + trial * 3, rng);
    EXPECT_EQ(revcomp(revcomp(s)), s);
  }
}

TEST(Dna, IsValidDna) {
  EXPECT_TRUE(is_valid_dna("ACGTacgt"));
  EXPECT_FALSE(is_valid_dna("ACGTN"));
  EXPECT_TRUE(is_valid_dna(""));
}

TEST(Kmer, FromStringToStringRoundTrip) {
  for (const char* s : {"A", "ACGT", "GATTACA", "TTTTTTTTTTTTTTTTTTTTT"}) {
    EXPECT_EQ(KmerT::from_string(s).to_string(), s);
  }
}

TEST(Kmer, RoundTripProperty) {
  std::mt19937_64 rng(13);
  for (int k = 1; k <= KmerT::kMaxK; ++k) {
    const auto s = random_dna_string(static_cast<std::size_t>(k), rng);
    const auto km = KmerT::from_string(s);
    EXPECT_EQ(km.k(), k);
    EXPECT_EQ(km.to_string(), s);
  }
}

TEST(Kmer, RevcompMatchesStringRevcomp) {
  std::mt19937_64 rng(17);
  for (int trial = 0; trial < 40; ++trial) {
    const int k = 1 + static_cast<int>(rng() % KmerT::kMaxK);
    const auto s = random_dna_string(static_cast<std::size_t>(k), rng);
    EXPECT_EQ(KmerT::from_string(s).revcomp().to_string(), revcomp(s));
  }
}

TEST(Kmer, CanonicalIsStrandInvariant) {
  std::mt19937_64 rng(19);
  for (int trial = 0; trial < 40; ++trial) {
    const int k = 1 + static_cast<int>(rng() % KmerT::kMaxK);
    const auto s = random_dna_string(static_cast<std::size_t>(k), rng);
    const auto km = KmerT::from_string(s);
    EXPECT_EQ(km.canonical(), km.revcomp().canonical());
    EXPECT_TRUE(km.canonical().is_canonical());
  }
}

TEST(Kmer, OrderingMatchesStringOrdering) {
  std::mt19937_64 rng(23);
  for (int trial = 0; trial < 60; ++trial) {
    const int k = 1 + static_cast<int>(rng() % 40);
    const auto a = random_dna_string(static_cast<std::size_t>(k), rng);
    const auto b = random_dna_string(static_cast<std::size_t>(k), rng);
    EXPECT_EQ(KmerT::from_string(a) < KmerT::from_string(b), a < b)
        << a << " vs " << b;
  }
}

TEST(Kmer, OrderingMatchesStringOrderingMixedLengths) {
  std::mt19937_64 rng(27);
  for (int trial = 0; trial < 60; ++trial) {
    const int ka = 1 + static_cast<int>(rng() % KmerT::kMaxK);
    const int kb = 1 + static_cast<int>(rng() % KmerT::kMaxK);
    auto a = random_dna_string(static_cast<std::size_t>(ka), rng);
    auto b = random_dna_string(static_cast<std::size_t>(kb), rng);
    if ((rng() & 1) != 0 && ka <= kb) a = b.substr(0, static_cast<std::size_t>(ka));
    EXPECT_EQ(KmerT::from_string(a) < KmerT::from_string(b), a < b)
        << a << " vs " << b;
  }
}

TEST(Kmer, ShiftedLeftWalksSequence) {
  const std::string s = "ACGTTGCAGT";
  const int k = 4;
  auto km = KmerT::from_string(s.substr(0, k));
  for (std::size_t i = static_cast<std::size_t>(k); i < s.size(); ++i) {
    km = km.shifted_left(base_to_code(s[i]));
    EXPECT_EQ(km.to_string(), s.substr(i - k + 1, k));
  }
}

TEST(Kmer, ShiftedRightWalksBackward) {
  const std::string s = "ACGTTGCAGT";
  const int k = 4;
  auto km = KmerT::from_string(s.substr(s.size() - k));
  for (std::size_t i = s.size() - k; i > 0; --i) {
    km = km.shifted_right(base_to_code(s[i - 1]));
    EXPECT_EQ(km.to_string(), s.substr(i - 1, k));
  }
}

TEST(Kmer, HashDiffersAcrossKmers) {
  std::mt19937_64 rng(29);
  std::set<std::uint64_t> hashes;
  for (int trial = 0; trial < 500; ++trial) {
    const auto s = random_dna_string(21, rng);
    hashes.insert(KmerT::from_string(s).hash());
  }
  // Random 21-mers essentially never collide in 64-bit space.
  EXPECT_GT(hashes.size(), 495u);
}

TEST(Kmer, EqualityRequiresSameK) {
  const auto a = KmerT::from_string("ACGT");
  const auto b = KmerT::from_string("ACGTA");
  EXPECT_NE(a, b);
}

// ---- word-parallel kernels vs retained base-loop references ----

template <typename KmerType>
class KmerWordKernels : public ::testing::Test {};

using KmerWidths = ::testing::Types<Kmer<32>, Kmer<64>, Kmer<96>>;
TYPED_TEST_SUITE(KmerWordKernels, KmerWidths);

TYPED_TEST(KmerWordKernels, KernelsMatchReferenceForRandomK) {
  using K = TypeParam;
  std::mt19937_64 rng(static_cast<std::uint64_t>(K::kMaxK) * 101 + 7);
  for (int trial = 0; trial < 300; ++trial) {
    const int k = 1 + static_cast<int>(rng() % K::kMaxK);
    const auto s = random_dna_string(static_cast<std::size_t>(k), rng);
    const auto km = K::from_string(s);
    const auto code = static_cast<std::uint8_t>(rng() & 3);

    EXPECT_EQ(km.revcomp(), km.revcomp_reference()) << s;
    EXPECT_EQ(km.canonical(), km.canonical_reference()) << s;
    EXPECT_EQ(km.is_canonical(), !K::less_reference(km.revcomp_reference(), km))
        << s;
    EXPECT_EQ(km.shifted_left(code), km.shifted_left_reference(code)) << s;
    EXPECT_EQ(km.shifted_right(code), km.shifted_right_reference(code)) << s;
    EXPECT_EQ(km.hash(), km.hash_reference()) << s;

    // Word kernels must not leave stale bits past base k-1: hash_reference
    // repacks every base, so it diverges from hash() on a dirty tail.
    const auto rc = km.revcomp();
    EXPECT_EQ(rc.hash(), rc.hash_reference()) << s;
    const auto sl = km.shifted_left(code);
    EXPECT_EQ(sl.hash(), sl.hash_reference()) << s;
    const auto sr = km.shifted_right(code);
    EXPECT_EQ(sr.hash(), sr.hash_reference()) << s;
  }
}

TYPED_TEST(KmerWordKernels, OrderingMatchesReference) {
  using K = TypeParam;
  std::mt19937_64 rng(static_cast<std::uint64_t>(K::kMaxK) * 131 + 3);
  for (int trial = 0; trial < 300; ++trial) {
    const int ka = 1 + static_cast<int>(rng() % K::kMaxK);
    const int kb = 1 + static_cast<int>(rng() % K::kMaxK);
    auto sa = random_dna_string(static_cast<std::size_t>(ka), rng);
    auto sb = random_dna_string(static_cast<std::size_t>(kb), rng);
    // Bias toward shared prefixes, where the tie-breaking rules live.
    if ((rng() & 1) != 0 && ka <= kb) sa = sb.substr(0, static_cast<std::size_t>(ka));
    const auto a = K::from_string(sa);
    const auto b = K::from_string(sb);
    EXPECT_EQ(a < b, K::less_reference(a, b)) << sa << " vs " << sb;
    EXPECT_EQ(b < a, K::less_reference(b, a)) << sa << " vs " << sb;
  }
}

TEST(Kmer, ExtractKmersCountsWindows) {
  std::vector<KmerT> kmers;
  ASSERT_TRUE(extract_kmers<KmerT::kMaxK>("ACGTACGT", 5, kmers));
  EXPECT_EQ(kmers.size(), 4u);
  EXPECT_EQ(kmers[0].to_string(), "ACGTA");
  EXPECT_EQ(kmers[3].to_string(), "TACGT");
  EXPECT_FALSE(extract_kmers<KmerT::kMaxK>("ACG", 5, kmers));
}

TEST(Kmer, ExtractKmersRestartsAfterInvalidBase) {
  std::vector<KmerT> kmers;
  // Each segment around the N is re-scanned instead of the read being
  // rejected outright.
  ASSERT_TRUE(extract_kmers<KmerT::kMaxK>("ACGTNACGT", 4, kmers));
  ASSERT_EQ(kmers.size(), 2u);
  EXPECT_EQ(kmers[0].to_string(), "ACGT");
  EXPECT_EQ(kmers[1].to_string(), "ACGT");
  // No segment long enough: nothing extracted.
  EXPECT_FALSE(extract_kmers<KmerT::kMaxK>("ACGTNACGT", 5, kmers));
  EXPECT_TRUE(kmers.empty());
  ASSERT_TRUE(extract_kmers<KmerT::kMaxK>("ACGTANTACGT", 5, kmers));
  ASSERT_EQ(kmers.size(), 2u);
  EXPECT_EQ(kmers[0].to_string(), "ACGTA");
  EXPECT_EQ(kmers[1].to_string(), "TACGT");
}

class KmerScannerParam : public ::testing::TestWithParam<int> {};

TEST_P(KmerScannerParam, MatchesNaiveExtraction) {
  const int k = GetParam();
  std::mt19937_64 rng(static_cast<std::uint64_t>(k) * 31 + 1);
  const auto s = random_dna_string(200, rng);
  std::size_t pos = 0;
  for (KmerScanner<KmerT::kMaxK> it(s, k); !it.done(); it.next()) {
    ASSERT_EQ(it.position(), pos);
    const auto expect_fwd = KmerT::from_string(s.substr(pos, static_cast<std::size_t>(k)));
    EXPECT_EQ(it.forward(), expect_fwd);
    EXPECT_EQ(it.reverse(), expect_fwd.revcomp());
    EXPECT_EQ(it.canonical(), expect_fwd.canonical());
    ++pos;
  }
  EXPECT_EQ(pos, s.size() - static_cast<std::size_t>(k) + 1);
}

INSTANTIATE_TEST_SUITE_P(KRange, KmerScannerParam,
                         ::testing::Values(1, 2, 15, 31, 32, 33, 51, 63, 64));

TEST(KmerScanner, SkipsInvalidWindows) {
  // 'N' at index 5 invalidates windows overlapping it.
  const std::string s = "ACGTANGTACGT";
  std::vector<std::size_t> positions;
  for (KmerScanner<KmerT::kMaxK> it(s, 4); !it.done(); it.next())
    positions.push_back(it.position());
  // Valid 4-mer windows: starts 0..1 (before N) and 6..8 (after N).
  EXPECT_EQ(positions, (std::vector<std::size_t>{0, 1, 6, 7, 8}));
}

TEST(KmerScanner, EmptyAndShortSequences) {
  KmerScanner<KmerT::kMaxK> empty("", 5);
  EXPECT_TRUE(empty.done());
  KmerScanner<KmerT::kMaxK> tiny("ACG", 5);
  EXPECT_TRUE(tiny.done());
  KmerScanner<KmerT::kMaxK> exact("ACGTA", 5);
  EXPECT_FALSE(exact.done());
  exact.next();
  EXPECT_TRUE(exact.done());
}

TEST(KmerScanner, MixedQualitySimulatedReads) {
  // Simulated error-bearing reads with their low-quality calls masked to
  // 'N' (standard quality masking): the scanner must recover exactly the
  // k-mers of every maximal clean segment instead of dropping whole reads.
  sim::Genome genome;
  {
    std::mt19937_64 rng(4242);
    genome.primary = random_dna_string(4000, rng);
  }
  sim::LibraryConfig lib;
  lib.read_length = 80;
  lib.coverage = 4.0;
  lib.error_rate = 0.02;
  lib.seed = 99;
  auto reads = sim::simulate_library(genome, lib);
  ASSERT_FALSE(reads.empty());

  const int k = 21;
  std::size_t masked_reads = 0;
  std::size_t windows = 0;
  for (auto& read : reads) {
    for (std::size_t i = 0; i < read.seq.size(); ++i)
      if (phred(read.quals[i]) < 10) read.seq[i] = 'N';
    if (read.seq.find('N') != std::string::npos) ++masked_reads;

    // Naive per-window reference: validate and pack each window from
    // scratch.
    std::vector<std::pair<std::size_t, KmerT>> expect;
    for (std::size_t i = 0; i + static_cast<std::size_t>(k) <= read.seq.size();
         ++i) {
      const std::string_view window =
          std::string_view(read.seq).substr(i, static_cast<std::size_t>(k));
      if (!is_valid_dna(window)) continue;
      expect.emplace_back(i, KmerT::from_string(window).canonical());
    }
    std::vector<std::pair<std::size_t, KmerT>> got;
    for (KmerScanner<KmerT::kMaxK> it(read.seq, k); !it.done(); it.next())
      got.emplace_back(it.position(), it.canonical());
    ASSERT_EQ(got, expect) << read.seq;
    windows += got.size();
  }
  // The error model plus masking must actually have exercised the restart
  // path, and masked reads still contribute k-mers.
  EXPECT_GT(masked_reads, 0u);
  EXPECT_GT(windows, 0u);
}

TEST(KmerScanner, InnerLoopDoesNotAllocate) {
  std::mt19937_64 rng(31337);
  std::string s = random_dna_string(20'000, rng);
  for (std::size_t i = 997; i < s.size(); i += 997) s[i] = 'N';  // restarts too

  const std::size_t before = g_allocations.load();
  std::uint64_t h = 0;
  std::size_t count = 0;
  for (KmerScanner<KmerT::kMaxK> it(s, 31); !it.done(); it.next()) {
    h ^= it.canonical().hash();
    ++count;
  }
  const std::size_t after = g_allocations.load();
  EXPECT_EQ(after, before) << "scanner construction/iteration allocated";
  EXPECT_GT(count, 19'000u);
  EXPECT_NE(h, 0u);
}

TEST(Extensions, FlipSwapsAndComplements) {
  const ExtPair e{'A', 'G'};
  const ExtPair f = flip(e);
  EXPECT_EQ(f.left, 'C');
  EXPECT_EQ(f.right, 'T');
  EXPECT_EQ(flip(f), e);  // involution
  const ExtPair special{kExtFork, kExtNone};
  const ExtPair fs = flip(special);
  EXPECT_EQ(fs.left, kExtNone);
  EXPECT_EQ(fs.right, kExtFork);
}

TEST(Read, PhredConversions) {
  EXPECT_EQ(phred('!'), 0);
  EXPECT_EQ(phred('I'), 40);
  EXPECT_EQ(phred_to_char(40), 'I');
  EXPECT_EQ(phred(phred_to_char(17)), 17);
  EXPECT_EQ(phred_to_char(-5), '!');   // clamped
  EXPECT_EQ(phred_to_char(100), phred_to_char(60));
}

}  // namespace
}  // namespace hipmer::seq
