#include <gtest/gtest.h>

#include <random>
#include <set>

#include "seq/dna.hpp"
#include "seq/extensions.hpp"
#include "seq/kmer.hpp"
#include "seq/kmer_iterator.hpp"
#include "seq/read.hpp"
#include "seq/types.hpp"

namespace hipmer::seq {
namespace {

std::string random_dna_string(std::size_t n, std::mt19937_64& rng) {
  static constexpr char bases[4] = {'A', 'C', 'G', 'T'};
  std::string s(n, 'A');
  std::uniform_int_distribution<int> dist(0, 3);
  for (auto& c : s) c = bases[dist(rng)];
  return s;
}

TEST(Dna, BaseCodesRoundTrip) {
  for (char c : {'A', 'C', 'G', 'T'}) {
    EXPECT_EQ(code_to_base(base_to_code(c)), c);
  }
  EXPECT_EQ(base_to_code('N'), kBaseInvalid);
  EXPECT_EQ(base_to_code('a'), kBaseA);
  EXPECT_EQ(base_to_code('t'), kBaseT);
}

TEST(Dna, ComplementIsInvolution) {
  for (std::uint8_t code = 0; code < 4; ++code)
    EXPECT_EQ(complement_code(complement_code(code)), code);
  for (char c : {'A', 'C', 'G', 'T'})
    EXPECT_EQ(complement_base(complement_base(c)), c);
}

TEST(Dna, RevcompKnownValues) {
  EXPECT_EQ(revcomp("ACGT"), "ACGT");  // palindrome
  EXPECT_EQ(revcomp("AAAA"), "TTTT");
  EXPECT_EQ(revcomp("GATTACA"), "TGTAATC");
  EXPECT_EQ(revcomp(""), "");
}

TEST(Dna, RevcompIsInvolutionProperty) {
  std::mt19937_64 rng(11);
  for (int trial = 0; trial < 50; ++trial) {
    const auto s = random_dna_string(1 + trial * 3, rng);
    EXPECT_EQ(revcomp(revcomp(s)), s);
  }
}

TEST(Dna, IsValidDna) {
  EXPECT_TRUE(is_valid_dna("ACGTacgt"));
  EXPECT_FALSE(is_valid_dna("ACGTN"));
  EXPECT_TRUE(is_valid_dna(""));
}

TEST(Kmer, FromStringToStringRoundTrip) {
  for (const char* s : {"A", "ACGT", "GATTACA", "TTTTTTTTTTTTTTTTTTTTT"}) {
    EXPECT_EQ(KmerT::from_string(s).to_string(), s);
  }
}

TEST(Kmer, RoundTripProperty) {
  std::mt19937_64 rng(13);
  for (int k = 1; k <= KmerT::kMaxK; ++k) {
    const auto s = random_dna_string(static_cast<std::size_t>(k), rng);
    const auto km = KmerT::from_string(s);
    EXPECT_EQ(km.k(), k);
    EXPECT_EQ(km.to_string(), s);
  }
}

TEST(Kmer, RevcompMatchesStringRevcomp) {
  std::mt19937_64 rng(17);
  for (int trial = 0; trial < 40; ++trial) {
    const int k = 1 + static_cast<int>(rng() % KmerT::kMaxK);
    const auto s = random_dna_string(static_cast<std::size_t>(k), rng);
    EXPECT_EQ(KmerT::from_string(s).revcomp().to_string(), revcomp(s));
  }
}

TEST(Kmer, CanonicalIsStrandInvariant) {
  std::mt19937_64 rng(19);
  for (int trial = 0; trial < 40; ++trial) {
    const int k = 1 + static_cast<int>(rng() % KmerT::kMaxK);
    const auto s = random_dna_string(static_cast<std::size_t>(k), rng);
    const auto km = KmerT::from_string(s);
    EXPECT_EQ(km.canonical(), km.revcomp().canonical());
    EXPECT_TRUE(km.canonical().is_canonical());
  }
}

TEST(Kmer, OrderingMatchesStringOrdering) {
  std::mt19937_64 rng(23);
  for (int trial = 0; trial < 60; ++trial) {
    const int k = 1 + static_cast<int>(rng() % 40);
    const auto a = random_dna_string(static_cast<std::size_t>(k), rng);
    const auto b = random_dna_string(static_cast<std::size_t>(k), rng);
    EXPECT_EQ(KmerT::from_string(a) < KmerT::from_string(b), a < b)
        << a << " vs " << b;
  }
}

TEST(Kmer, ShiftedLeftWalksSequence) {
  const std::string s = "ACGTTGCAGT";
  const int k = 4;
  auto km = KmerT::from_string(s.substr(0, k));
  for (std::size_t i = static_cast<std::size_t>(k); i < s.size(); ++i) {
    km = km.shifted_left(base_to_code(s[i]));
    EXPECT_EQ(km.to_string(), s.substr(i - k + 1, k));
  }
}

TEST(Kmer, ShiftedRightWalksBackward) {
  const std::string s = "ACGTTGCAGT";
  const int k = 4;
  auto km = KmerT::from_string(s.substr(s.size() - k));
  for (std::size_t i = s.size() - k; i > 0; --i) {
    km = km.shifted_right(base_to_code(s[i - 1]));
    EXPECT_EQ(km.to_string(), s.substr(i - 1, k));
  }
}

TEST(Kmer, HashDiffersAcrossKmers) {
  std::mt19937_64 rng(29);
  std::set<std::uint64_t> hashes;
  for (int trial = 0; trial < 500; ++trial) {
    const auto s = random_dna_string(21, rng);
    hashes.insert(KmerT::from_string(s).hash());
  }
  // Random 21-mers essentially never collide in 64-bit space.
  EXPECT_GT(hashes.size(), 495u);
}

TEST(Kmer, EqualityRequiresSameK) {
  const auto a = KmerT::from_string("ACGT");
  const auto b = KmerT::from_string("ACGTA");
  EXPECT_NE(a, b);
}

TEST(Kmer, ExtractKmersCountsWindows) {
  std::vector<KmerT> kmers;
  ASSERT_TRUE(extract_kmers<KmerT::kMaxK>("ACGTACGT", 5, kmers));
  EXPECT_EQ(kmers.size(), 4u);
  EXPECT_EQ(kmers[0].to_string(), "ACGTA");
  EXPECT_EQ(kmers[3].to_string(), "TACGT");
  EXPECT_FALSE(extract_kmers<KmerT::kMaxK>("ACG", 5, kmers));
  EXPECT_FALSE(extract_kmers<KmerT::kMaxK>("ACGTNACGT", 5, kmers));
}

class KmerIteratorParam : public ::testing::TestWithParam<int> {};

TEST_P(KmerIteratorParam, MatchesNaiveExtraction) {
  const int k = GetParam();
  std::mt19937_64 rng(static_cast<std::uint64_t>(k) * 31 + 1);
  const auto s = random_dna_string(200, rng);
  std::size_t pos = 0;
  for (KmerIterator<KmerT::kMaxK> it(s, k); !it.done(); it.next()) {
    ASSERT_EQ(it.position(), pos);
    const auto expect_fwd = KmerT::from_string(s.substr(pos, static_cast<std::size_t>(k)));
    EXPECT_EQ(it.forward(), expect_fwd);
    EXPECT_EQ(it.reverse(), expect_fwd.revcomp());
    EXPECT_EQ(it.canonical(), expect_fwd.canonical());
    ++pos;
  }
  EXPECT_EQ(pos, s.size() - static_cast<std::size_t>(k) + 1);
}

INSTANTIATE_TEST_SUITE_P(KRange, KmerIteratorParam,
                         ::testing::Values(1, 2, 15, 31, 32, 33, 51, 63, 64));

TEST(KmerIterator, SkipsInvalidWindows) {
  // 'N' at index 5 invalidates windows overlapping it.
  const std::string s = "ACGTANGTACGT";
  std::vector<std::size_t> positions;
  for (KmerIterator<KmerT::kMaxK> it(s, 4); !it.done(); it.next())
    positions.push_back(it.position());
  // Valid 4-mer windows: starts 0..1 (before N) and 6..8 (after N).
  EXPECT_EQ(positions, (std::vector<std::size_t>{0, 1, 6, 7, 8}));
}

TEST(KmerIterator, EmptyAndShortSequences) {
  KmerIterator<KmerT::kMaxK> empty("", 5);
  EXPECT_TRUE(empty.done());
  KmerIterator<KmerT::kMaxK> tiny("ACG", 5);
  EXPECT_TRUE(tiny.done());
  KmerIterator<KmerT::kMaxK> exact("ACGTA", 5);
  EXPECT_FALSE(exact.done());
  exact.next();
  EXPECT_TRUE(exact.done());
}

TEST(Extensions, FlipSwapsAndComplements) {
  const ExtPair e{'A', 'G'};
  const ExtPair f = flip(e);
  EXPECT_EQ(f.left, 'C');
  EXPECT_EQ(f.right, 'T');
  EXPECT_EQ(flip(f), e);  // involution
  const ExtPair special{kExtFork, kExtNone};
  const ExtPair fs = flip(special);
  EXPECT_EQ(fs.left, kExtNone);
  EXPECT_EQ(fs.right, kExtFork);
}

TEST(Read, PhredConversions) {
  EXPECT_EQ(phred('!'), 0);
  EXPECT_EQ(phred('I'), 40);
  EXPECT_EQ(phred_to_char(40), 'I');
  EXPECT_EQ(phred(phred_to_char(17)), 17);
  EXPECT_EQ(phred_to_char(-5), '!');   // clamped
  EXPECT_EQ(phred_to_char(100), phred_to_char(60));
}

}  // namespace
}  // namespace hipmer::seq
