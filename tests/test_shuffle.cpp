// Locality shuffle: the ShuffleExchange substrate (exactly-once delivery in
// deterministic order, with and without chaos), the read-shuffle invariants
// (nothing lost, mates co-located with each other and their alignments),
// and the headline guarantee — assembly output is byte-identical with
// --shuffle-reads and --packed-reads in any combination, on multiple team
// sizes and under a chaos schedule — while gap closing sends fewer
// off-node messages.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "align/alignment.hpp"
#include "pgas/chaos.hpp"
#include "pgas/shuffle.hpp"
#include "pgas/thread_team.hpp"
#include "pipeline/pipeline.hpp"
#include "pipeline/read_shuffle.hpp"
#include "seq/read_name.hpp"
#include "seq/read_store.hpp"
#include "sim/datasets.hpp"

namespace hipmer {
namespace {

std::vector<std::byte> bytes_of(const std::string& s) {
  std::vector<std::byte> b(s.size());
  std::memcpy(b.data(), s.data(), s.size());
  return b;
}

std::string string_of(const std::vector<std::byte>& b) {
  return std::string(reinterpret_cast<const char*>(b.data()), b.size());
}

/// Every rank sends a deterministic set of tagged records to every other
/// rank; collect() must return exactly that multiset, in (src asc, send
/// order) order, on every rank.
void exchange_delivers_exactly_once(pgas::ChaosPlan plan) {
  const int p = 4;
  pgas::ThreadTeam team(pgas::Topology{p, 2});
  team.transport().set_plan(plan);
  pgas::ShuffleExchange exchange(team, "test.shuffle_exchange");
  std::vector<std::vector<std::string>> received(p);
  team.run([&](pgas::Rank& rank) {
    const int me = rank.id();
    for (int round = 0; round < 50; ++round) {
      const int dest = (me + 1 + round) % p;
      if (dest == me) continue;
      exchange.send(rank, dest,
                    bytes_of("src" + std::to_string(me) + ".r" +
                             std::to_string(round)));
    }
    auto records = exchange.collect(rank);
    for (const auto& r : records)
      received[static_cast<std::size_t>(me)].push_back(string_of(r));
  });

  for (int me = 0; me < p; ++me) {
    std::vector<std::string> expected;
    for (int src = 0; src < p; ++src) {
      if (src == me) continue;
      for (int round = 0; round < 50; ++round)
        if ((src + 1 + round) % p == me)
          expected.push_back("src" + std::to_string(src) + ".r" +
                             std::to_string(round));
    }
    EXPECT_EQ(received[static_cast<std::size_t>(me)], expected)
        << "rank " << me;
  }
}

TEST(ShuffleExchange, DeliversExactlyOnceInOrder) {
  exchange_delivers_exactly_once(pgas::ChaosPlan{});
}

TEST(ShuffleExchange, SurvivesDropDupReorderChaos) {
  exchange_delivers_exactly_once(
      pgas::ChaosPlan::parse(17, "drop=0.15,dup=0.1,reorder=0.1"));
}

TEST(ShuffleExchange, ReusableAcrossPhases) {
  const int p = 3;
  pgas::ThreadTeam team(pgas::Topology{p, 2});
  pgas::ShuffleExchange exchange(team, "test.shuffle_reuse");
  std::vector<std::vector<std::string>> got(p);
  team.run([&](pgas::Rank& rank) {
    const int me = rank.id();
    for (int phase = 0; phase < 3; ++phase) {
      exchange.send(rank, (me + 1) % p,
                    bytes_of("p" + std::to_string(phase)));
      auto records = exchange.collect(rank);
      for (const auto& r : records)
        got[static_cast<std::size_t>(me)].push_back(string_of(r));
    }
  });
  for (int me = 0; me < p; ++me)
    EXPECT_EQ(got[static_cast<std::size_t>(me)],
              (std::vector<std::string>{"p0", "p1", "p2"}));
}

// ---- read shuffle invariants ----

struct ShuffleFixture {
  int p = 4;
  std::vector<std::vector<seq::ReadStore>> libs;       // [rank][lib]
  std::vector<std::vector<align::ReadAlignment>> alns;  // [rank]
};

/// Build a deterministic distributed read set (2 libraries) where pair i of
/// library l aligns to contig (i * 7 + l) % 16, plus some unaligned pairs.
ShuffleFixture make_fixture(bool packed) {
  ShuffleFixture f;
  f.libs.assign(static_cast<std::size_t>(f.p), {});
  f.alns.assign(static_cast<std::size_t>(f.p), {});
  for (int r = 0; r < f.p; ++r)
    for (int lib = 0; lib < 2; ++lib)
      f.libs[static_cast<std::size_t>(r)].emplace_back(packed);
  const int pairs_per_lib = 40;
  for (int lib = 0; lib < 2; ++lib) {
    for (int pair = 0; pair < pairs_per_lib; ++pair) {
      const int home = pair % f.p;  // ingest deal
      auto& store = f.libs[static_cast<std::size_t>(home)][static_cast<std::size_t>(lib)];
      for (int mate = 0; mate < 2; ++mate) {
        const std::string name = "lib" + std::to_string(lib) + ":" +
                                 std::to_string(pair) + "/" +
                                 std::to_string(mate);
        store.append(name, "ACGTACGTACGTACGTACGT", "IIIIIIIIIIIIIIIIIIII");
      }
      if (pair % 5 == 4) continue;  // every 5th pair has no alignment
      align::ReadAlignment a;
      a.pair_id = static_cast<std::uint64_t>(pair);
      a.mate = 0;
      a.library = lib;
      a.contig_id = static_cast<std::uint32_t>((pair * 7 + lib) % 16);
      a.score = 20;
      a.read_len = 20;
      f.alns[static_cast<std::size_t>(home)].push_back(a);
    }
  }
  return f;
}

void check_shuffle_invariants(bool packed) {
  auto f = make_fixture(packed);
  pgas::ThreadTeam team(pgas::Topology{f.p, 2});
  pgas::ShuffleExchange exchange(team, "test.read_shuffle");
  std::vector<pipeline::ReadShuffleStats> stats(static_cast<std::size_t>(f.p));
  team.run([&](pgas::Rank& rank) {
    const auto r = static_cast<std::size_t>(rank.id());
    pipeline::shuffle_reads_by_alignment(rank, exchange, f.libs[r], f.alns[r],
                                         &stats[r]);
  });

  // Nothing lost, nothing duplicated: the global (name -> rank) map covers
  // every read exactly once.
  std::map<std::string, int> rank_of;
  std::size_t total_reads = 0;
  std::size_t total_alns = 0;
  for (int r = 0; r < f.p; ++r) {
    for (int lib = 0; lib < 2; ++lib) {
      const auto& store =
          f.libs[static_cast<std::size_t>(r)][static_cast<std::size_t>(lib)];
      EXPECT_EQ(store.packed(), packed);
      for (std::size_t i = 0; i < store.size(); ++i) {
        const auto [it, inserted] =
            rank_of.emplace(std::string(store.name(i)), r);
        EXPECT_TRUE(inserted) << "duplicate read " << it->first;
        ++total_reads;
      }
    }
    total_alns += f.alns[static_cast<std::size_t>(r)].size();
  }
  EXPECT_EQ(total_reads, 2u * 2u * 40u);
  EXPECT_EQ(total_alns, 2u * 32u);

  std::uint64_t moved = 0;
  for (const auto& s : stats) moved += s.pairs_moved;
  EXPECT_GT(moved, 0u);

  for (int r = 0; r < f.p; ++r) {
    // Mates stay co-located AND adjacent mate-0-first (the read_id ^ 1
    // convention downstream consumers rely on).
    for (int lib = 0; lib < 2; ++lib) {
      const auto& store =
          f.libs[static_cast<std::size_t>(r)][static_cast<std::size_t>(lib)];
      ASSERT_EQ(store.size() % 2, 0u);
      for (std::size_t i = 0; i < store.size(); i += 2) {
        std::uint64_t p0 = 0, p1 = 0;
        int m0 = 0, m1 = 0;
        ASSERT_TRUE(seq::parse_read_name(store.name(i), p0, m0));
        ASSERT_TRUE(seq::parse_read_name(store.name(i + 1), p1, m1));
        EXPECT_EQ(p0, p1);
        EXPECT_EQ(m0, 0);
        EXPECT_EQ(m1, 1);
      }
    }
    // Aligned pairs landed on their contig's owner, alignments beside them.
    for (const auto& a : f.alns[static_cast<std::size_t>(r)]) {
      EXPECT_EQ(static_cast<int>(a.contig_id % static_cast<std::uint32_t>(f.p)),
                r)
          << "alignment for pair " << a.pair_id << " not on contig owner";
      const std::string name = "lib" + std::to_string(a.library) + ":" +
                               std::to_string(a.pair_id) + "/0";
      ASSERT_TRUE(rank_of.count(name));
      EXPECT_EQ(rank_of[name], r) << "read " << name
                                  << " separated from its alignment";
    }
  }
}

TEST(ReadShuffle, InvariantsPlainStore) { check_shuffle_invariants(false); }
TEST(ReadShuffle, InvariantsPackedStore) { check_shuffle_invariants(true); }

// ---- pipeline byte-identity ----

pipeline::PipelineConfig base_config() {
  pipeline::PipelineConfig cfg;
  cfg.k = 25;
  cfg.kmer.min_count = 3;
  cfg.sync_k();
  return cfg;
}

std::vector<std::pair<std::string, std::string>> run_pipeline(
    int nranks, pipeline::PipelineConfig cfg, const sim::Dataset& ds,
    double* gap_offnode = nullptr) {
  pipeline::Pipeline pipe(pgas::Topology{nranks, 2}, cfg);
  const auto result = pipe.run(ds.reads, ds.libraries);
  if (gap_offnode != nullptr) {
    *gap_offnode = 0;
    for (const auto& s : result.stages)
      if (s.name == pipeline::kStageGapClosing)
        *gap_offnode += static_cast<double>(s.comm.offnode_msgs);
  }
  std::vector<std::pair<std::string, std::string>> records;
  for (const auto& rec : result.scaffolds) records.emplace_back(rec.name, rec.seq);
  return records;
}

TEST(ReadShuffle, AssemblyByteIdenticalAcrossModes) {
  auto ds = sim::make_human_like(30000, 4242, 15.0);
  for (const int nranks : {3, 4}) {
    auto cfg = base_config();
    const auto baseline = run_pipeline(nranks, cfg, ds);
    ASSERT_FALSE(baseline.empty());

    cfg.packed_reads = true;
    EXPECT_EQ(run_pipeline(nranks, cfg, ds), baseline)
        << "packed-reads changed output at nranks=" << nranks;

    cfg.packed_reads = false;
    cfg.shuffle_reads = true;
    EXPECT_EQ(run_pipeline(nranks, cfg, ds), baseline)
        << "shuffle-reads changed output at nranks=" << nranks;

    cfg.packed_reads = true;
    EXPECT_EQ(run_pipeline(nranks, cfg, ds), baseline)
        << "packed+shuffle changed output at nranks=" << nranks;
  }
}

TEST(ReadShuffle, ByteIdenticalUnderChaosAndMultipleRounds) {
  auto ds = sim::make_human_like(30000, 4243, 15.0);
  auto cfg = base_config();
  cfg.scaffolding_rounds = 2;
  const auto baseline = run_pipeline(4, cfg, ds);
  ASSERT_FALSE(baseline.empty());

  cfg.packed_reads = true;
  cfg.shuffle_reads = true;
  cfg.chaos = pgas::ChaosPlan::parse(23, "drop=0.05,dup=0.05");
  EXPECT_EQ(run_pipeline(4, cfg, ds), baseline);
}

TEST(ReadShuffle, GapClosingSendsFewerOffNodeMessages) {
  auto ds = sim::make_human_like(40000, 4244, 18.0);
  auto cfg = base_config();
  double without = 0.0;
  double with = 0.0;
  const auto baseline = run_pipeline(4, cfg, ds, &without);
  cfg.shuffle_reads = true;
  const auto shuffled = run_pipeline(4, cfg, ds, &with);
  EXPECT_EQ(shuffled, baseline);
  // The whole point of the shuffle: gap closing's projections become
  // mostly local.
  EXPECT_LT(with, without) << "with=" << with << " without=" << without;
}

}  // namespace
}  // namespace hipmer
