#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <random>

#include "pipeline/pipeline.hpp"
#include "seq/dna.hpp"
#include "sim/datasets.hpp"
#include "sim/read_sim.hpp"
#include "seq/kmer_scanner.hpp"
#include <unordered_set>

namespace hipmer::pipeline {
namespace {

namespace fs = std::filesystem;

/// Fraction of the reference covered by exact scaffold placements
/// (greedy, both strands; N-split scaffolds are matched piecewise).
double reference_coverage(const std::string& reference,
                          const std::vector<io::FastaRecord>& scaffolds) {
  std::vector<bool> covered(reference.size(), false);
  auto mark = [&](const std::string& piece) {
    if (piece.size() < 31) return;
    for (const std::string& s : {piece, seq::revcomp(piece)}) {
      const std::size_t pos = reference.find(s);
      if (pos == std::string::npos) continue;
      for (std::size_t i = pos; i < pos + s.size(); ++i) covered[i] = true;
      return;
    }
  };
  for (const auto& rec : scaffolds) {
    // Split on N runs; each real segment should be an exact substring.
    std::size_t start = 0;
    while (start < rec.seq.size()) {
      const std::size_t n = rec.seq.find('N', start);
      const std::size_t end = (n == std::string::npos) ? rec.seq.size() : n;
      if (end > start) mark(rec.seq.substr(start, end - start));
      if (n == std::string::npos) break;
      start = rec.seq.find_first_not_of('N', n);
      if (start == std::string::npos) break;
    }
  }
  const auto hit = static_cast<double>(
      std::count(covered.begin(), covered.end(), true));
  return hit / static_cast<double>(reference.size());
}

/// K-mer spectrum comparison, the right fidelity metric for diploid
/// assemblies: bubble merging picks one haplotype per site, so a scaffold
/// is a haplotype *mosaic* and exact substring matching fails even for a
/// perfect assembly.
struct KmerFidelity {
  /// Fraction of scaffold k-mers present in the reference (union of
  /// haplotypes): ~1 unless sequence was fabricated.
  double accuracy = 0.0;
  /// Fraction of primary-haplotype k-mers recovered in the scaffolds.
  double completeness = 0.0;
};

KmerFidelity kmer_fidelity(const sim::Genome& genome,
                           const std::vector<io::FastaRecord>& scaffolds,
                           int k = 31) {
  using seq::KmerT;
  std::unordered_set<KmerT, seq::KmerHashT> ref_union;
  std::unordered_set<KmerT, seq::KmerHashT> ref_primary;
  for (seq::KmerScanner<KmerT::kMaxK> it(genome.primary, k); !it.done();
       it.next()) {
    ref_union.insert(it.canonical());
    ref_primary.insert(it.canonical());
  }
  if (genome.diploid()) {
    for (seq::KmerScanner<KmerT::kMaxK> it(genome.secondary, k); !it.done();
         it.next())
      ref_union.insert(it.canonical());
  }
  std::unordered_set<KmerT, seq::KmerHashT> assembled;
  for (const auto& rec : scaffolds)
    for (seq::KmerScanner<KmerT::kMaxK> it(rec.seq, k); !it.done(); it.next())
      assembled.insert(it.canonical());

  KmerFidelity f;
  std::size_t good = 0;
  for (const auto& km : assembled) good += ref_union.contains(km);
  f.accuracy = assembled.empty()
                   ? 0.0
                   : static_cast<double>(good) / static_cast<double>(assembled.size());
  std::size_t found = 0;
  for (const auto& km : ref_primary) found += assembled.contains(km);
  f.completeness = ref_primary.empty()
                       ? 0.0
                       : static_cast<double>(found) /
                             static_cast<double>(ref_primary.size());
  return f;
}

PipelineConfig small_config(int k = 25) {
  PipelineConfig cfg;
  cfg.k = k;
  // ~20x datasets with Illumina-like 0.8% errors: count >= 3 keeps repeated
  // error k-mers (two miscalls of the same base) out of the contigs.
  cfg.kmer.min_count = 3;
  cfg.sync_k();
  return cfg;
}

TEST(Pipeline, EndToEndHumanLike) {
  auto ds = sim::make_human_like(60000, 7771);
  Pipeline pipeline(pgas::Topology{4, 2}, small_config());
  const auto result = pipeline.run(ds.reads, ds.libraries);

  // The assembly exists and is substantial.
  ASSERT_GT(result.scaffolds.size(), 0u);
  EXPECT_GT(result.num_contigs, 0u);
  EXPECT_GT(result.scaffold_stats.total_length, 50000u);

  // Scaffolding improves contiguity over raw contigs.
  EXPECT_GE(result.scaffold_stats.n50, result.contig_stats.n50);

  // Assembled sequence is faithful (haplotype-mosaic aware): no fabricated
  // sequence, and nearly the whole genome recovered.
  const auto fidelity = kmer_fidelity(ds.genome, result.scaffolds);
  EXPECT_GT(fidelity.accuracy, 0.99);
  EXPECT_GT(fidelity.completeness, 0.90);

  // Every stage ran.
  EXPECT_GT(result.wall_for(kStageKmerAnalysis), 0.0);
  EXPECT_GT(result.wall_for(kStageContigGen), 0.0);
  EXPECT_GT(result.wall_for(kStageAligner), 0.0);
  EXPECT_GT(result.wall_for(kStageGapClosing), 0.0);
  EXPECT_GT(result.modeled_total(), 0.0);

  // Insert size was recovered (the simulator used 395 +/- 30).
  ASSERT_FALSE(result.insert_estimates.empty());
  EXPECT_NEAR(result.insert_estimates[0].mean, 395.0, 20.0);
}

TEST(Pipeline, EndToEndWheatLike) {
  auto ds = sim::make_wheat_like(80000, 7773);
  auto cfg = small_config(25);
  cfg.merge_bubbles = false;  // homozygous line
  cfg.scaffolding_rounds = 2;
  Pipeline pipeline(pgas::Topology{4, 2}, cfg);
  const auto result = pipeline.run(ds.reads, ds.libraries);

  ASSERT_GT(result.scaffolds.size(), 0u);
  // Repeats fragment the contigs badly...
  EXPECT_GT(result.num_contigs, 20u);
  // ...and heavy hitters exist in the k-mer spectrum.
  EXPECT_GT(result.heavy_hitters, 0u);
  // Scaffolding stitches across repeats: N50 improves substantially.
  EXPECT_GT(result.scaffold_stats.n50, result.contig_stats.n50);
}

TEST(Pipeline, DeterministicAcrossRankCounts) {
  auto ds = sim::make_human_like(30000, 7779, 15.0);
  std::vector<std::string> reference_scaffolds;
  for (int nranks : {1, 3, 4}) {
    Pipeline pipeline(pgas::Topology{nranks, 2}, small_config());
    const auto result = pipeline.run(ds.reads, ds.libraries);
    std::vector<std::string> seqs;
    for (const auto& rec : result.scaffolds) {
      const auto rc = seq::revcomp(rec.seq);
      seqs.push_back(std::min(rec.seq, rc));
    }
    std::sort(seqs.begin(), seqs.end());
    if (reference_scaffolds.empty()) {
      reference_scaffolds = seqs;
    } else {
      EXPECT_EQ(seqs, reference_scaffolds) << "nranks=" << nranks;
    }
  }
}

TEST(Pipeline, FromFastqMatchesInMemory) {
  auto ds = sim::make_human_like(25000, 7781, 15.0);
  const auto dir = fs::temp_directory_path() /
                   ("hipmer_pipe_" + std::to_string(std::random_device{}()));
  fs::create_directories(dir);
  ASSERT_TRUE(sim::write_dataset_fastq(ds, dir.string()));

  Pipeline mem_pipeline(pgas::Topology{3, 2}, small_config());
  const auto mem = mem_pipeline.run(ds.reads, ds.libraries);
  Pipeline fastq_pipeline(pgas::Topology{3, 2}, small_config());
  const auto fastq = fastq_pipeline.run_from_fastq(ds.libraries);
  fs::remove_all(dir);

  auto canon = [](const std::vector<io::FastaRecord>& records) {
    std::vector<std::string> seqs;
    for (const auto& r : records)
      seqs.push_back(std::min(r.seq, seq::revcomp(r.seq)));
    std::sort(seqs.begin(), seqs.end());
    return seqs;
  };
  EXPECT_EQ(canon(mem.scaffolds), canon(fastq.scaffolds));
  // The FASTQ path reports I/O.
  EXPECT_GT(fastq.wall_for(kStageIo), 0.0);
  std::uint64_t io_bytes = fastq.stages[0].comm.io_read_bytes;
  EXPECT_GT(io_bytes, 0u);
}

TEST(Pipeline, GapsAreClosedOnCleanData) {
  // Moderate repeats fragment contigs; with clean reads the gap closer
  // should seal most scaffold gaps.
  sim::Dataset ds;
  ds.name = "gaps";
  sim::GenomeConfig gc;
  gc.length = 50000;
  gc.repeat_fraction = 0.25;
  gc.repeat_families = 5;
  gc.repeat_unit_length = 120;  // repeats longer than k but shorter than reads
  gc.seed = 7787;
  ds.genome = sim::simulate_genome(gc);
  sim::LibraryConfig lc;
  lc.name = "pe";
  lc.read_length = 100;
  lc.mean_insert = 350.0;
  lc.stddev_insert = 30.0;
  lc.coverage = 20.0;
  lc.error_rate = 0.0;
  lc.seed = 7789;
  ds.libraries.push_back(seq::ReadLibrary{"pe", 350.0, 30.0, 100, "", true});
  ds.reads.push_back(sim::simulate_library(ds.genome, lc));

  auto cfg = small_config(31);
  cfg.merge_bubbles = false;
  Pipeline pipeline(pgas::Topology{4, 2}, cfg);
  const auto result = pipeline.run(ds.reads, ds.libraries);
  if (result.closure_stats.gaps_total > 0) {
    EXPECT_GT(static_cast<double>(result.closure_stats.gaps_closed),
              0.5 * static_cast<double>(result.closure_stats.gaps_total));
  }
  // Closed gaps must contain real sequence: scaffolds still map exactly.
  const double cov = reference_coverage(ds.genome.primary, result.scaffolds);
  EXPECT_GT(cov, 0.8);
}

}  // namespace
}  // namespace hipmer::pipeline
