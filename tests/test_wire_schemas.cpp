#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>

#include "wire_schema_adapters.hpp"

/// Generated corruption coverage for every schema in
/// tools/wirecheck/schemas.json (the golden manifest wirecheck gates).
///
/// The build generates wire_sweep_manifest.inc from the manifest; the
/// adapters in wire_schema_adapters.hpp supply a pristine sample and a
/// decode-to-fingerprint function per schema. The sweeps then corrupt every
/// byte (two masks) and truncate at every boundary:
///   - kReject (schema carries its own CRC): decode must fail outright;
///   - kDetect (integrity delegated to an outer envelope): decode must fail
///     OR the decoded message's fingerprint must change. A corruption that
///     decodes back to the original message means that wire byte is dead —
///     the class of defect that let the old whole-struct alignment codec
///     ship 7 invisible padding bytes per record.
namespace hipmer::testing {
namespace {

enum class SweepMode { kReject, kDetect };

struct ManifestRow {
  const char* schema;
  SweepMode mode;
};

constexpr ManifestRow kManifest[] = {
#include "wire_sweep_manifest.inc"
};

std::map<std::string, const WireSweepCase*> case_index(
    const std::vector<WireSweepCase>& cases) {
  std::map<std::string, const WireSweepCase*> index;
  for (const auto& c : cases) index[c.schema] = &c;
  return index;
}

/// True when the corrupted buffer is properly handled: rejected, or decoded
/// to a visibly different message.
bool handled(const WireSweepCase& c, SweepMode mode, const Bytes& corrupted,
             const Fingerprint& pristine_fp) {
  const Fingerprint fp = c.decode(corrupted);
  if (!fp) return true;
  if (mode == SweepMode::kReject) return false;  // CRC must catch everything
  return *fp != *pristine_fp;
}

class WireSchemaSweep : public ::testing::Test {
 protected:
  static const std::vector<WireSweepCase>& cases() {
    static const std::vector<WireSweepCase> all = wire_sweep_cases();
    return all;
  }
};

/// The generated manifest and the hand-written adapters must cover each
/// other exactly: annotating a new schema without growing an adapter (or
/// leaving a stale adapter behind) is a test failure, not silent drift.
TEST_F(WireSchemaSweep, ManifestCoversAdaptersExactly) {
  std::set<std::string> manifest_names;
  for (const auto& row : kManifest) manifest_names.insert(row.schema);
  std::set<std::string> adapter_names;
  for (const auto& c : cases()) {
    EXPECT_TRUE(adapter_names.insert(c.schema).second)
        << "duplicate adapter for schema '" << c.schema << "'";
  }
  for (const auto& name : manifest_names) {
    EXPECT_TRUE(adapter_names.count(name))
        << "schema '" << name << "' is in tools/wirecheck/schemas.json but "
        << "has no adapter in tests/wire_schema_adapters.hpp";
  }
  for (const auto& name : adapter_names) {
    EXPECT_TRUE(manifest_names.count(name))
        << "adapter '" << name << "' has no schema in the generated manifest "
        << "(stale adapter, or schemas.json not regenerated)";
  }
}

TEST_F(WireSchemaSweep, PristineSamplesDecode) {
  for (const auto& c : cases()) {
    ASSERT_FALSE(c.bytes.empty()) << c.schema << ": empty sample";
    const Fingerprint fp = c.decode(c.bytes);
    ASSERT_TRUE(fp.has_value()) << c.schema << ": pristine sample rejected";
    // The fingerprint must be reproducible, or the sweeps below would
    // compare corrupted decodes against a moving target.
    const Fingerprint fp2 = c.decode(c.bytes);
    ASSERT_TRUE(fp2.has_value()) << c.schema;
    EXPECT_EQ(*fp, *fp2) << c.schema << ": fingerprint not deterministic";
  }
}

TEST_F(WireSchemaSweep, EverySingleByteFlipIsHandled) {
  const auto index = case_index(cases());
  for (const auto& row : kManifest) {
    const auto it = index.find(row.schema);
    ASSERT_NE(it, index.end()) << row.schema;
    const WireSweepCase& c = *it->second;
    const Fingerprint pristine_fp = c.decode(c.bytes);
    ASSERT_TRUE(pristine_fp.has_value()) << c.schema;
    for (std::size_t i = 0; i < c.bytes.size(); ++i) {
      for (const unsigned mask : {0x01U, 0xFFU}) {
        Bytes corrupted = c.bytes;
        corrupted[i] ^= static_cast<std::byte>(mask);
        EXPECT_TRUE(handled(c, row.mode, corrupted, pristine_fp))
            << c.schema << ": flip of byte " << i << " (mask 0x" << std::hex
            << mask << ") decoded back to the original message — dead wire "
            << "byte or missing validation";
      }
    }
  }
}

TEST_F(WireSchemaSweep, EveryTruncationPointIsHandled) {
  const auto index = case_index(cases());
  for (const auto& row : kManifest) {
    const auto it = index.find(row.schema);
    ASSERT_NE(it, index.end()) << row.schema;
    const WireSweepCase& c = *it->second;
    const Fingerprint pristine_fp = c.decode(c.bytes);
    ASSERT_TRUE(pristine_fp.has_value()) << c.schema;
    for (std::size_t len = 0; len < c.bytes.size(); ++len) {
      const Bytes truncated(c.bytes.begin(),
                            c.bytes.begin() + static_cast<std::ptrdiff_t>(len));
      EXPECT_TRUE(handled(c, row.mode, truncated, pristine_fp))
          << c.schema << ": truncation to " << len << " of " << c.bytes.size()
          << " bytes decoded as the original message";
    }
  }
}

/// Appending garbage after a complete message must not be invisible either:
/// decoders that own their framing check done(); record codecs get the
/// check from the adapter.
TEST_F(WireSchemaSweep, TrailingGarbageIsHandled) {
  const auto index = case_index(cases());
  for (const auto& row : kManifest) {
    const auto it = index.find(row.schema);
    ASSERT_NE(it, index.end()) << row.schema;
    const WireSweepCase& c = *it->second;
    const Fingerprint pristine_fp = c.decode(c.bytes);
    ASSERT_TRUE(pristine_fp.has_value()) << c.schema;
    Bytes extended = c.bytes;
    extended.push_back(std::byte{0x5A});
    EXPECT_TRUE(handled(c, row.mode, extended, pristine_fp))
        << c.schema << ": one trailing garbage byte went unnoticed";
  }
}

// ---- regressions for defects the schema analysis surfaced ----
//
// Each of these was a corruption the decoders used to accept silently; the
// sweeps above would catch a reintroduction too, but these name the exact
// byte and the exact rule so a failure reads as the bug it is.

/// An absent RMW response used to ignore trailing bytes — a framing bug
/// upstream could smuggle a payload past the `present == 0` flag.
TEST(WireSchemaRegression, RmwResponseRejectsTrailingBytesWhenAbsent) {
  Bytes absent = pgas::map_wire::encode_rmw_response(false, {});
  ASSERT_EQ(absent.size(), 1U);
  absent.push_back(std::byte{0x7F});
  EXPECT_THROW(pgas::map_wire::decode_rmw_response(absent.data(),
                                                   absent.size()),
               io::wire::CorruptError);
}

/// has_junction bytes of 2..255 used to decode as `true` and re-encode as
/// 1 — a partially dead wire byte. Wire booleans are strict 0/1 now.
TEST(WireSchemaRegression, ContigRejectsNonBooleanJunctionFlag) {
  Bytes buf;
  dbg::serialize_contig(buf, sweep_detail::sample_contig(0));
  // ContigWireHeader: u64 id, f32 depth, 2 term chars, then the two
  // has_junction flag bytes at offsets 14 and 15.
  Bytes corrupt = buf;
  corrupt[14] = std::byte{2};
  io::wire::Reader r(corrupt);
  EXPECT_THROW(dbg::get_contig_checked(r), io::wire::CorruptError);
  io::wire::Reader ok(buf);
  EXPECT_NO_THROW(dbg::get_contig_checked(ok));
}

/// The 2-bit packed tail byte's unused high bits must be zero: the writer
/// zeroes them, so anything else is corruption a round-trip would mask.
TEST(WireSchemaRegression, SeqdbRejectsNonCanonicalPackedTail) {
  seq::Read read = sweep_detail::sample_read(0);
  read.seq.resize(30);  // 30 % 4 == 2: tail byte has 4 dead bits
  read.quals.clear();
  std::string enc;
  io::seqdb_serialize_record(enc, read);
  // Layout: [u32 name_len][u32 seq_len][u8 flags][name][packed seq].
  const std::size_t tail = 9 + read.name.size() + (30 + 3) / 4 - 1;
  ASSERT_EQ(tail + 1, enc.size());
  enc[tail] = static_cast<char>(enc[tail] | 0x40);
  std::size_t pos = 0;
  EXPECT_THROW(io::seqdb_deserialize_record(enc, pos), std::runtime_error);
}

TEST(WireSchemaRegression, SeqdbRejectsUnknownFlagBits) {
  std::string enc;
  io::seqdb_serialize_record(enc, sweep_detail::sample_read(0));
  enc[8] = static_cast<char>(enc[8] | 0x04);
  std::size_t pos = 0;
  EXPECT_THROW(io::seqdb_deserialize_record(enc, pos), std::runtime_error);
}

/// A lookup-reply `found` byte of 2 used to decode as `true`; now every
/// wire boolean is validated at the byte level.
TEST(WireSchemaRegression, LookupReplyRejectsNonBooleanFoundFlag) {
  Bytes buf;
  io::wire::Writer w(buf);
  w.put_u32(1);
  w.put_u64(42);                         // tag
  w.put_pod(std::uint8_t{2});            // found: neither 0 nor 1
  w.put_pod(std::uint64_t{0xAB});        // key
  EXPECT_THROW((pgas::map_wire::decode_lookup_replies<std::uint64_t,
                                                      std::uint32_t>(
                   buf.data(), buf.size())),
               io::wire::CorruptError);
}

}  // namespace
}  // namespace hipmer::testing
