// End-to-end chaos harness: the full pipeline under seeded lossy-fabric
// schedules must produce byte-identical assemblies to a fault-free run —
// the delivery protocol (seq/ack/dedup/reorder-buffer/retry) makes the
// chaos invisible to results, visible only in the transport counters. A
// blackholed peer must escalate to suspect-peer unwind and resume cleanly
// from the last checkpoint.
//
// The combined-schedule sweep honors HIPMER_CHAOS_SEEDS (comma-separated),
// which the CI chaos job pins to three fixed seeds.

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "pgas/chaos.hpp"
#include "pgas/fault.hpp"
#include "pipeline/pipeline.hpp"
#include "sim/datasets.hpp"

namespace hipmer {
namespace {

namespace fs = std::filesystem;

pipeline::PipelineConfig chaos_config() {
  pipeline::PipelineConfig cfg;
  cfg.k = 25;
  cfg.kmer.min_count = 3;
  cfg.sync_k();
  return cfg;
}

void expect_same_assembly(const pipeline::PipelineResult& expected,
                          const pipeline::PipelineResult& actual,
                          const std::string& label) {
  ASSERT_EQ(expected.scaffolds.size(), actual.scaffolds.size()) << label;
  for (std::size_t i = 0; i < expected.scaffolds.size(); ++i) {
    EXPECT_EQ(expected.scaffolds[i].name, actual.scaffolds[i].name)
        << label << " record " << i;
    EXPECT_EQ(expected.scaffolds[i].seq, actual.scaffolds[i].seq)
        << label << " record " << i;
  }
  EXPECT_EQ(expected.num_contigs, actual.num_contigs) << label;
  EXPECT_EQ(expected.distinct_kmers, actual.distinct_kmers) << label;
  EXPECT_EQ(expected.contig_stats.n50, actual.contig_stats.n50) << label;
  EXPECT_EQ(expected.scaffold_stats.n50, actual.scaffold_stats.n50) << label;
}

pgas::CommStatsSnapshot total_comm(pipeline::Pipeline& pipe) {
  pgas::CommStatsSnapshot total;
  for (const auto& s : pipe.team().snapshot_all()) total += s;
  return total;
}

std::vector<std::uint64_t> chaos_seeds() {
  std::vector<std::uint64_t> seeds;
  if (const char* env = std::getenv("HIPMER_CHAOS_SEEDS")) {
    std::stringstream ss(env);
    std::string tok;
    while (std::getline(ss, tok, ','))
      if (!tok.empty()) seeds.push_back(std::stoull(tok));
  }
  if (seeds.empty()) seeds = {101, 202, 303};
  return seeds;
}

/// The built-in schedules the acceptance harness runs: each stresses one
/// protocol mechanism, the last combines them all.
struct Schedule {
  const char* name;
  const char* spec;
};
constexpr Schedule kSchedules[] = {
    {"drop", "drop=0.10"},
    {"dup", "dup=0.05"},
    {"reorder", "reorder=0.30"},
    {"delay", "delay=0.30"},
    {"corrupt", "corrupt=0.05"},
    {"combined", "drop=0.08,dup=0.04,reorder=0.10,delay=0.10,corrupt=0.03"},
};

TEST(Chaos, EveryBuiltInScheduleYieldsByteIdenticalAssembly) {
  auto ds = sim::make_human_like(18000, 4242, 15.0);

  const pgas::Topology teams[] = {{4, 2}, {6, 3}};
  for (const auto& topo : teams) {
    // The fault-free reference is computed at the same team size the chaos
    // runs use: assemblies are team-size independent, but the raw
    // distinct_kmers statistic is not (per-rank Bloom filters admit
    // different false-positive sets), so comparing 6-rank chaos output to
    // a 4-rank reference would flag a pre-existing sharding artifact as a
    // transport bug.
    pipeline::Pipeline reference(topo, chaos_config());
    const auto expected = reference.run(ds.reads, ds.libraries);
    ASSERT_FALSE(expected.scaffolds.empty());
    EXPECT_EQ(total_comm(reference).transport_retries, 0u);

    for (const auto& schedule : kSchedules) {
      const std::string label = std::string(schedule.name) + " on " +
                                std::to_string(topo.nranks) + " ranks";
      auto cfg = chaos_config();
      cfg.chaos = pgas::ChaosPlan::parse(1234, schedule.spec);
      pipeline::Pipeline pipe(topo, cfg);
      const auto result = pipe.run(ds.reads, ds.libraries);
      expect_same_assembly(expected, result, label);

      // The schedule's fault kind actually fired, and it is visible in the
      // CommStats text output.
      const auto comm = total_comm(pipe);
      const std::string text = comm.to_string();
      EXPECT_NE(text.find("retry="), std::string::npos) << text;
      EXPECT_NE(text.find("corrupt="), std::string::npos) << text;
      if (cfg.chaos.defaults.drop > 0) {
        EXPECT_GT(comm.transport_retries, 0u) << label;
      }
      if (cfg.chaos.defaults.dup > 0) {
        EXPECT_GT(comm.transport_dups, 0u) << label;
      }
      if (cfg.chaos.defaults.corrupt > 0) {
        EXPECT_GT(comm.transport_corrupts, 0u) << label;
        EXPECT_GT(comm.transport_retries, 0u) << label;
      }
      // The retry histogram report names at least one channel whenever
      // anything retried.
      if (comm.transport_retries > 0) {
        EXPECT_FALSE(pipe.team().transport().format_retry_histograms().empty())
            << label;
      }
    }
  }
}

TEST(Chaos, CombinedScheduleAcrossSeeds) {
  auto ds = sim::make_wheat_like(15000, 7, 15.0);
  pipeline::Pipeline reference(pgas::Topology{4, 2}, chaos_config());
  const auto expected = reference.run(ds.reads, ds.libraries);
  ASSERT_FALSE(expected.scaffolds.empty());

  for (const auto seed : chaos_seeds()) {
    auto cfg = chaos_config();
    cfg.chaos = pgas::ChaosPlan::parse(
        seed, "drop=0.08,dup=0.04,reorder=0.10,delay=0.10,corrupt=0.03");
    pipeline::Pipeline pipe(pgas::Topology{4, 2}, cfg);
    const auto result = pipe.run(ds.reads, ds.libraries);
    expect_same_assembly(expected, result, "seed " + std::to_string(seed));
    EXPECT_GT(total_comm(pipe).transport_retries, 0u)
        << "seed " << seed;
  }
}

TEST(Chaos, PerChannelOverridesScopeTheFaults) {
  auto ds = sim::make_human_like(15000, 99, 15.0);
  pipeline::Pipeline reference(pgas::Topology{4, 2}, chaos_config());
  const auto expected = reference.run(ds.reads, ds.libraries);

  // Chaos only on lookup channels: stores must sail through untouched
  // (no retries charged by the store path alone would be hard to isolate,
  // but the assembly must still be byte-identical).
  auto cfg = chaos_config();
  cfg.chaos = pgas::ChaosPlan::parse(31, "lookup:drop=0.2,dup=0.1");
  pipeline::Pipeline pipe(pgas::Topology{4, 2}, cfg);
  const auto result = pipe.run(ds.reads, ds.libraries);
  expect_same_assembly(expected, result, "lookup-only chaos");
  EXPECT_GT(total_comm(pipe).transport_retries, 0u);
}

TEST(Chaos, ComposesWithRankKillPlans) {
  // Chaos on the fabric while a FaultPlan kills a rank: the kill still
  // unwinds cleanly (no hang, no double-fault confusion).
  auto ds = sim::make_human_like(15000, 99, 15.0);
  auto cfg = chaos_config();
  cfg.chaos = pgas::ChaosPlan::parse(7, "drop=0.05,dup=0.05");
  pipeline::Pipeline pipe(pgas::Topology{4, 2}, cfg);
  pipe.team().faults().set_plan(
      pgas::FaultPlan{1, pipeline::kStageContigGen, 0, 1});
  EXPECT_THROW((void)pipe.run(ds.reads, ds.libraries), pgas::RankKilled);
  EXPECT_TRUE(pipe.team().faults().fired());
}

TEST(Chaos, BlackholedPeerUnwindsAndResumesFromCheckpoint) {
  auto ds = sim::make_human_like(18000, 4242, 15.0);
  pipeline::Pipeline reference(pgas::Topology{4, 2}, chaos_config());
  const auto expected = reference.run(ds.reads, ds.libraries);
  ASSERT_FALSE(expected.scaffolds.empty());

  const auto dir = fs::temp_directory_path() /
                   ("hipmer_chaos_bh_" +
                    std::to_string(std::random_device{}()));
  fs::create_directories(dir);

  auto cfg = chaos_config();
  cfg.checkpoint.dir = dir.string();
  // Rank 2's fabric goes dark when contig generation begins: its peers
  // exhaust the retry deadline, declare it suspect, and the whole team
  // unwinds through the RankKilled path — bounded by max_attempts, so the
  // run terminates instead of hanging on a silent peer.
  cfg.chaos = pgas::ChaosPlan::parse(5, "blackhole=2@kmer_analysis");
  {
    pipeline::Pipeline victim(pgas::Topology{4, 2}, cfg);
    try {
      (void)victim.run(ds.reads, ds.libraries);
      FAIL() << "expected the blackholed run to unwind via RankKilled";
    } catch (const pgas::RankKilled& e) {
      EXPECT_NE(std::string(e.what()).find("killed"), std::string::npos);
    }
    EXPECT_TRUE(victim.team().faults().fired());
    EXPECT_NE(victim.team().transport().suspect_peer(), -1);
    EXPECT_GT(total_comm(victim).transport_retries, 0u);
  }

  // Recovery: a fresh team with a healthy fabric resumes from the last
  // committed snapshot and finishes with the fault-free assembly.
  auto recover_cfg = cfg;
  recover_cfg.chaos = pgas::ChaosPlan{};
  pipeline::Pipeline recovery(pgas::Topology{4, 2}, recover_cfg);
  const auto resumed = recovery.resume(ds.reads, ds.libraries);
  expect_same_assembly(expected, resumed, "post-blackhole resume");
  fs::remove_all(dir);
}

TEST(Chaos, BlackholeRecoveryUnderContinuedChaos) {
  // Degraded-mode check: after the suspect-peer unwind, even the recovery
  // run keeps a lossy (but not blackholed) fabric and still converges.
  auto ds = sim::make_human_like(15000, 1, 15.0);
  pipeline::Pipeline reference(pgas::Topology{4, 2}, chaos_config());
  const auto expected = reference.run(ds.reads, ds.libraries);

  const auto dir = fs::temp_directory_path() /
                   ("hipmer_chaos_bh2_" +
                    std::to_string(std::random_device{}()));
  fs::create_directories(dir);

  auto cfg = chaos_config();
  cfg.checkpoint.dir = dir.string();
  cfg.chaos =
      pgas::ChaosPlan::parse(9, "drop=0.05;blackhole=1@contig_generation");
  {
    pipeline::Pipeline victim(pgas::Topology{4, 2}, cfg);
    EXPECT_THROW((void)victim.run(ds.reads, ds.libraries), pgas::RankKilled);
  }
  auto recover_cfg = cfg;
  recover_cfg.chaos = pgas::ChaosPlan::parse(10, "drop=0.05,dup=0.03");
  pipeline::Pipeline recovery(pgas::Topology{4, 2}, recover_cfg);
  const auto resumed = recovery.resume(ds.reads, ds.libraries);
  expect_same_assembly(expected, resumed, "lossy resume");
  fs::remove_all(dir);
}

}  // namespace
}  // namespace hipmer
