// Fabric tests: frame codec hardening (every-bit-flip and truncation
// sweeps over recorded wire bytes), the worker endpoint's handshake and
// frame protocol against an in-process fake coordinator, and end-to-end
// multi-process assembly through the CLI — byte-identical output across
// fabrics, including under a pinned chaos schedule and a kill -9'd worker
// that resumes from checkpoint.

#include <gtest/gtest.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "io/wire.hpp"
#include "pgas/fabric.hpp"
#include "pgas/fault.hpp"

namespace hipmer::pgas {
namespace {

Frame sample_frame(FrameKind kind) {
  Frame f;
  f.kind = kind;
  f.channel = 7;
  f.src = 2;
  f.dst = 5;
  for (int i = 0; i < 37; ++i)
    f.payload.push_back(static_cast<std::byte>(i * 13 + 1));
  return f;
}

TEST(FrameCodec, RoundTripsEveryKind) {
  for (auto kind : {FrameKind::kHello, FrameKind::kRoster, FrameKind::kData,
                    FrameKind::kBarrier, FrameKind::kRelease,
                    FrameKind::kSerial, FrameKind::kSerialRelease,
                    FrameKind::kOneway, FrameKind::kRpcReq,
                    FrameKind::kRpcResp, FrameKind::kRankDown,
                    FrameKind::kBye}) {
    const Frame f = sample_frame(kind);
    const auto bytes = encode_frame(f);
    const Frame g = decode_frame(bytes.data(), bytes.size());
    EXPECT_EQ(g.kind, f.kind);
    EXPECT_EQ(g.channel, f.channel);
    EXPECT_EQ(g.src, f.src);
    EXPECT_EQ(g.dst, f.dst);
    EXPECT_EQ(g.payload, f.payload);
  }
}

TEST(FrameCodec, EmptyPayloadRoundTrips) {
  Frame f;
  f.kind = FrameKind::kBye;
  f.src = 3;
  const auto bytes = encode_frame(f);
  const Frame g = decode_frame(bytes.data(), bytes.size());
  EXPECT_EQ(g.kind, FrameKind::kBye);
  EXPECT_TRUE(g.payload.empty());
}

// Every single-bit corruption of a recorded frame must be rejected — the
// crc32c trailer covers the header and payload, the magic gates the
// stream, and the length field is cross-checked against the buffer.
TEST(FrameCodec, EveryBitFlipIsRejected) {
  const auto bytes = encode_frame(sample_frame(FrameKind::kData));
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      auto flipped = bytes;
      flipped[i] ^= static_cast<std::byte>(1u << bit);
      EXPECT_THROW(decode_frame(flipped.data(), flipped.size()),
                   io::wire::Error)
          << "byte " << i << " bit " << bit << " accepted after flip";
    }
  }
}

// Every proper prefix of a recorded frame must fail as truncated or
// corrupt — never decode, never read past the end.
TEST(FrameCodec, EveryTruncationIsRejected) {
  const auto bytes = encode_frame(sample_frame(FrameKind::kOneway));
  for (std::size_t n = 0; n < bytes.size(); ++n) {
    EXPECT_THROW(decode_frame(bytes.data(), n), io::wire::Error)
        << "prefix of " << n << " bytes accepted";
  }
}

TEST(FrameCodec, TrailingGarbageIsRejected) {
  auto bytes = encode_frame(sample_frame(FrameKind::kData));
  bytes.push_back(std::byte{0xAB});
  EXPECT_THROW(decode_frame(bytes.data(), bytes.size()), io::wire::Error);
}

// ---- endpoint protocol against a fake coordinator -------------------------

/// Speaks the coordinator's half of the socket protocol from a plain
/// blocking fd, so the worker endpoint can be exercised hermetically.
class FakeCoordinator {
 public:
  explicit FakeCoordinator(int nranks) : nranks_(nranks) {
    path_ = "/tmp/hipmer-fabric-test-" + std::to_string(getpid()) + "-" +
            std::to_string(++instance_counter_) + ".sock";
    listen_fd_ = socket(AF_UNIX, SOCK_STREAM, 0);
    struct sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path_.c_str(), sizeof(addr.sun_path) - 1);
    unlink(path_.c_str());
    if (bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
        listen(listen_fd_, 1) != 0)
      throw std::runtime_error("FakeCoordinator: bind/listen failed");
  }

  ~FakeCoordinator() {
    if (fd_ >= 0) close(fd_);
    if (listen_fd_ >= 0) close(listen_fd_);
    unlink(path_.c_str());
  }

  [[nodiscard]] const std::string& path() const { return path_; }

  /// Accept the worker, read its HELLO, reply ROSTER (optionally lying
  /// about the team size).
  void handshake(int roster_nranks = -1) {
    fd_ = accept(listen_fd_, nullptr, nullptr);
    ASSERT_GE(fd_, 0);
    const Frame hello = read_frame();
    ASSERT_EQ(hello.kind, FrameKind::kHello);
    hello_rank_ = static_cast<int>(hello.src);
    Frame roster;
    roster.kind = FrameKind::kRoster;
    io::wire::Writer w(roster.payload);
    w.put_u32(static_cast<std::uint32_t>(
        roster_nranks < 0 ? nranks_ : roster_nranks));
    send(roster);
  }

  void send(const Frame& f) { send_raw(encode_frame(f)); }

  /// Ship arbitrary bytes — corrupt frames, split frames, garbage.
  void send_raw(const std::vector<std::byte>& bytes) {
    std::size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n = write(fd_, bytes.data() + off, bytes.size() - off);
      ASSERT_GT(n, 0);
      off += static_cast<std::size_t>(n);
    }
  }

  Frame read_frame() {
    Frame f;
    while (!try_pop(f)) {
      struct pollfd p{fd_, POLLIN, 0};
      if (poll(&p, 1, 5000) <= 0)
        throw std::runtime_error("FakeCoordinator: read timeout");
      std::byte chunk[4096];
      const ssize_t n = read(fd_, chunk, sizeof chunk);
      if (n <= 0) throw std::runtime_error("FakeCoordinator: peer closed");
      rx_.insert(rx_.end(), chunk, chunk + n);
    }
    return f;
  }

  [[nodiscard]] int hello_rank() const { return hello_rank_; }

 private:
  bool try_pop(Frame& out) {
    constexpr std::size_t header = 6 * sizeof(std::uint32_t);
    if (rx_.size() < header) return false;
    std::uint32_t len = 0;
    std::memcpy(&len, rx_.data() + 5 * sizeof(std::uint32_t), 4);
    const std::size_t total = header + len + sizeof(std::uint32_t);
    if (rx_.size() < total) return false;
    out = decode_frame(rx_.data(), total);
    rx_.erase(rx_.begin(), rx_.begin() + static_cast<std::ptrdiff_t>(total));
    return true;
  }

  static inline int instance_counter_ = 0;
  int nranks_;
  std::string path_;
  int listen_fd_ = -1;
  int fd_ = -1;
  int hello_rank_ = -1;
  std::vector<std::byte> rx_;
};

TEST(SocketEndpoint, HandshakeHelloRoster) {
  FakeCoordinator coord(4);
  std::unique_ptr<SocketFabric> fab;
  std::thread t([&] { fab = SocketFabric::worker(4, 2, coord.path()); });
  coord.handshake();
  t.join();
  ASSERT_NE(fab, nullptr);
  EXPECT_EQ(coord.hello_rank(), 2);
  EXPECT_TRUE(fab->multiprocess());
  EXPECT_EQ(fab->my_rank(), 2);
  EXPECT_TRUE(fab->is_local(2));
  EXPECT_FALSE(fab->is_local(0));
}

TEST(SocketEndpoint, RosterTeamSizeMismatchThrows) {
  FakeCoordinator coord(4);
  std::unique_ptr<SocketFabric> fab;
  std::string error;
  std::thread t([&] {
    try {
      fab = SocketFabric::worker(4, 1, coord.path());
    } catch (const std::exception& e) {
      error = e.what();
    }
  });
  coord.handshake(/*roster_nranks=*/8);
  t.join();
  EXPECT_EQ(fab, nullptr);
  EXPECT_NE(error.find("team-size mismatch"), std::string::npos) << error;
}

TEST(SocketEndpoint, SerialExchangeRoundTrip) {
  FakeCoordinator coord(2);
  std::unique_ptr<SocketFabric> fab;
  std::thread t([&] { fab = SocketFabric::worker(2, 1, coord.path()); });
  coord.handshake();
  t.join();
  ASSERT_NE(fab, nullptr);

  // The endpoint blocks in serial_exchange until the router releases it;
  // drive the router's half from this thread.
  std::vector<std::vector<std::byte>> got;
  std::thread worker_thread([&] {
    std::vector<std::byte> mine{std::byte{0x11}, std::byte{0x22}};
    got = fab->serial_exchange(std::move(mine));
  });
  const Frame serial = coord.read_frame();
  EXPECT_EQ(serial.kind, FrameKind::kSerial);
  EXPECT_EQ(serial.src, 1u);
  ASSERT_EQ(serial.payload.size(), 2u);
  EXPECT_EQ(serial.payload[0], std::byte{0x11});

  Frame rel;
  rel.kind = FrameKind::kSerialRelease;
  io::wire::Writer w(rel.payload);
  w.put_u32(2);
  w.put_bytes(std::string_view("\x0a", 1));       // rank 0's part
  w.put_bytes(std::string_view("\x11\x22", 2));   // rank 1's part (echo)
  coord.send(rel);
  worker_thread.join();

  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], (std::vector<std::byte>{std::byte{0x0a}}));
  EXPECT_EQ(got[1], (std::vector<std::byte>{std::byte{0x11}, std::byte{0x22}}));
}

TEST(SocketEndpoint, RankDownSurfacesAsRankKilled) {
  FakeCoordinator coord(2);
  std::unique_ptr<SocketFabric> fab;
  std::thread t([&] { fab = SocketFabric::worker(2, 1, coord.path()); });
  coord.handshake();
  t.join();
  ASSERT_NE(fab, nullptr);

  int hook_rank = -1;
  fab->set_down_hook([&](int r) { hook_rank = r; });

  Frame down;
  down.kind = FrameKind::kRankDown;
  down.src = 0;
  coord.send(down);

  EXPECT_THROW(fab->poll_until([] { return false; }), RankKilled);
  EXPECT_EQ(hook_rank, 0);
}

TEST(SocketEndpoint, CoordinatorEofSurfacesAsRankKilled) {
  auto coord = std::make_unique<FakeCoordinator>(2);
  std::unique_ptr<SocketFabric> fab;
  std::thread t([&] { fab = SocketFabric::worker(2, 1, coord->path()); });
  coord->handshake();
  t.join();
  ASSERT_NE(fab, nullptr);
  coord.reset();  // closes the socket: the router "died"
  EXPECT_THROW(fab->poll_until([] { return false; }), RankKilled);
}

TEST(SocketEndpoint, OnewayDispatchesToRegisteredService) {
  FakeCoordinator coord(2);
  std::unique_ptr<SocketFabric> fab;
  std::thread t([&] { fab = SocketFabric::worker(2, 1, coord.path()); });
  coord.handshake();
  t.join();
  ASSERT_NE(fab, nullptr);

  int from = -1;
  std::vector<std::byte> received;
  const auto service = fab->register_oneway(
      [&](int src, const std::byte* data, std::size_t size) {
        from = src;
        received.assign(data, data + size);
      });

  Frame msg;
  msg.kind = FrameKind::kOneway;
  msg.channel = service;
  msg.src = 0;
  msg.dst = 1;
  msg.payload = {std::byte{0x5a}, std::byte{0xa5}};
  coord.send(msg);

  fab->poll_until([&] { return from >= 0; });
  EXPECT_EQ(from, 0);
  EXPECT_EQ(received, msg.payload);
}

// A frame split across many small writes must reassemble: the endpoint
// buffers partial frames until the length-prefixed total arrives.
TEST(SocketEndpoint, SplitFrameReassembles) {
  FakeCoordinator coord(2);
  std::unique_ptr<SocketFabric> fab;
  std::thread t([&] { fab = SocketFabric::worker(2, 1, coord.path()); });
  coord.handshake();
  t.join();
  ASSERT_NE(fab, nullptr);

  int from = -1;
  const auto service = fab->register_oneway(
      [&](int src, const std::byte*, std::size_t) { from = src; });

  Frame msg;
  msg.kind = FrameKind::kOneway;
  msg.channel = service;
  msg.src = 0;
  msg.dst = 1;
  for (int i = 0; i < 100; ++i) msg.payload.push_back(std::byte{0x7f});
  const auto bytes = encode_frame(msg);
  for (std::size_t i = 0; i < bytes.size(); i += 7) {
    const auto end = std::min(bytes.size(), i + 7);
    coord.send_raw({bytes.begin() + static_cast<std::ptrdiff_t>(i),
                    bytes.begin() + static_cast<std::ptrdiff_t>(end)});
  }
  fab->poll_until([&] { return from >= 0; });
  EXPECT_EQ(from, 0);
}

// A corrupted byte on the wire must surface as an error on the serving
// endpoint, never decode into a different frame.
TEST(SocketEndpoint, CorruptStreamThrowsWhileServing) {
  FakeCoordinator coord(2);
  std::unique_ptr<SocketFabric> fab;
  std::thread t([&] { fab = SocketFabric::worker(2, 1, coord.path()); });
  coord.handshake();
  t.join();
  ASSERT_NE(fab, nullptr);

  Frame msg;
  msg.kind = FrameKind::kOneway;
  msg.src = 0;
  msg.dst = 1;
  msg.payload = {std::byte{1}, std::byte{2}, std::byte{3}};
  auto bytes = encode_frame(msg);
  bytes[bytes.size() - 6] ^= std::byte{0x40};  // flip one payload bit
  coord.send_raw(bytes);
  EXPECT_THROW(fab->poll_until([] { return false; }), io::wire::Error);
}

// ---- end-to-end through the CLI -------------------------------------------

#ifdef HIPMER_CLI_BIN

class FabricEndToEnd : public ::testing::Test {
 protected:
  static std::string dir_;
  static std::string fastq_;

  static void SetUpTestSuite() {
    char tmpl[] = "/tmp/hipmer-fabric-e2e-XXXXXX";
    ASSERT_NE(mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
    ASSERT_EQ(run(std::string(HIPMER_CLI_BIN) + " simulate human --genome " +
                  "20000 --seed 11 --out-dir " + dir_),
              0);
    // simulate prints "wrote <path> (insert N)"; find the FASTQ it wrote.
    fastq_ = dir_ + "/human_like_pe395.fastq";
    std::ifstream probe(fastq_);
    ASSERT_TRUE(probe.good()) << "simulated FASTQ missing: " << fastq_;
  }

  static void TearDownTestSuite() {
    if (!dir_.empty()) run("rm -rf " + dir_);
  }

  static int run(const std::string& cmd) {
    const int rc = std::system((cmd + " > /dev/null 2>&1").c_str());
    return WIFEXITED(rc) ? WEXITSTATUS(rc) : -1;
  }

  static std::string assemble_cmd(const std::string& out,
                                  const std::string& extra) {
    return std::string(HIPMER_CLI_BIN) + " assemble --reads " + fastq_ +
           " --insert 395 --k 21 --ranks 4 --min-count 2 --out " + dir_ +
           "/" + out + " " + extra;
  }

  static std::string slurp(const std::string& name) {
    std::ifstream in(dir_ + "/" + name, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
  }
};

std::string FabricEndToEnd::dir_;
std::string FabricEndToEnd::fastq_;

TEST_F(FabricEndToEnd, ProcFabricMatchesThreadsByteForByte) {
  ASSERT_EQ(run(assemble_cmd("threads.fasta", "")), 0);
  ASSERT_EQ(run(assemble_cmd("proc.fasta", "--fabric proc")), 0);
  const auto threads = slurp("threads.fasta");
  const auto proc = slurp("proc.fasta");
  ASSERT_FALSE(threads.empty());
  EXPECT_EQ(proc, threads);
}

TEST_F(FabricEndToEnd, PinnedChaosScheduleMatchesAcrossFabrics) {
  const std::string chaos =
      "--chaos-spec drop=0.02,dup=0.01,reorder=0.02 --chaos-seed 1299721";
  ASSERT_EQ(run(assemble_cmd("threads_chaos.fasta", chaos)), 0);
  ASSERT_EQ(run(assemble_cmd("proc_chaos.fasta", chaos + " --fabric proc")),
            0);
  const auto threads = slurp("threads_chaos.fasta");
  const auto proc = slurp("proc_chaos.fasta");
  ASSERT_FALSE(threads.empty());
  EXPECT_EQ(proc, threads);
}

TEST_F(FabricEndToEnd, KilledWorkerResumesFromCheckpointIdentically) {
  ASSERT_EQ(run(assemble_cmd("kill_ref.fasta", "")), 0);
  ASSERT_EQ(
      run(assemble_cmd("kill_proc.fasta",
                       "--fabric proc --checkpoint-dir " + dir_ +
                           "/ckpt --kill 2@contig_generation:0:1,hard")),
      0);
  const auto ref = slurp("kill_ref.fasta");
  const auto resumed = slurp("kill_proc.fasta");
  ASSERT_FALSE(ref.empty());
  EXPECT_EQ(resumed, ref);
}

#endif  // HIPMER_CLI_BIN

}  // namespace
}  // namespace hipmer::pgas
