#include <gtest/gtest.h>

#include <filesystem>
#include <random>

#include "baseline/baselines.hpp"
#include "pipeline/pipeline.hpp"
#include "sim/datasets.hpp"

namespace hipmer::baseline {
namespace {

namespace fs = std::filesystem;

class BaselineFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("hipmer_base_" + std::to_string(std::random_device{}()));
    fs::create_directories(dir_);
    ds_ = sim::make_human_like(60'000, 6001, 15.0);
    ASSERT_TRUE(sim::write_dataset_fastq(ds_, dir_.string()));
  }
  void TearDown() override { fs::remove_all(dir_); }

  sim::Dataset ds_;
  fs::path dir_;
};

TEST_F(BaselineFixture, CompetitorOrderingMatchesPaper) {
  const pgas::Topology topo{16, 4};
  BaselineConfig cfg;
  cfg.k = 31;

  pipeline::PipelineConfig pc;
  pc.k = 31;
  pc.kmer.min_count = 3;
  pc.sync_k();
  pipeline::Pipeline hipmer_pipe(topo, pc);
  const auto hipmer_result = hipmer_pipe.run_from_fastq(ds_.libraries);

  const auto ray = run_raylike(topo, cfg, ds_.libraries);
  const auto abyss = run_abysslike(topo, cfg, ds_.libraries);

  // Each comparator produced a real assembly...
  EXPECT_GT(ray.num_contigs, 0u);
  EXPECT_GT(ray.num_scaffolds, 0u);
  EXPECT_GT(abyss.num_contigs, 0u);
  // ...and the paper's ordering holds in modeled time: HipMer fastest,
  // the single-node-scaffolding ABySS-like slowest.
  EXPECT_LT(hipmer_result.modeled_total(), ray.modeled_total());
  EXPECT_LT(ray.modeled_total(), abyss.modeled_total());
}

TEST_F(BaselineFixture, SerialMeraculousMatchesParallelOutputSize) {
  BaselineConfig cfg;
  cfg.k = 31;
  const auto mer = run_serial_meraculous(cfg, ds_.reads, ds_.libraries);
  EXPECT_GT(mer.num_contigs, 0u);
  EXPECT_GT(mer.num_scaffolds, 0u);
  // Contig bases in the same ballpark as the genome.
  EXPECT_GT(mer.contig_bases, 40'000u);
}

TEST_F(BaselineFixture, RaylikeSerialIoChargesOneNode) {
  const pgas::Topology topo{8, 4};
  BaselineConfig cfg;
  cfg.k = 31;
  const auto ray = run_raylike(topo, cfg, ds_.libraries);
  // The io stage exists and has nonzero modeled time (serial bottleneck).
  double io_modeled = -1.0;
  for (const auto& s : ray.stages)
    if (s.name == pipeline::kStageIo) io_modeled = s.modeled_seconds;
  ASSERT_GE(io_modeled, 0.0) << "raylike must report an io stage";

  // Compare with HipMer's parallel read of the same files at the same
  // topology: the serial read must be strictly slower in modeled time.
  pipeline::PipelineConfig pc;
  pc.k = 31;
  pc.sync_k();
  pipeline::Pipeline pipe(topo, pc);
  const auto par = pipe.run_from_fastq(ds_.libraries);
  EXPECT_GT(io_modeled, par.modeled_for(pipeline::kStageIo));
}

}  // namespace
}  // namespace hipmer::baseline
