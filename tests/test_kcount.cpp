#include <gtest/gtest.h>

#include <map>
#include <random>
#include <unordered_map>

#include "kcount/bloom_filter.hpp"
#include "kcount/hyperloglog.hpp"
#include "kcount/kmer_analysis.hpp"
#include "kcount/misra_gries.hpp"
#include "sim/datasets.hpp"
#include "sim/genome_sim.hpp"
#include "sim/read_sim.hpp"
#include "util/hash.hpp"

namespace hipmer::kcount {
namespace {

using seq::KmerT;

TEST(BloomFilter, NoFalseNegatives) {
  BloomFilter bloom(10000);
  std::mt19937_64 rng(1);
  std::vector<std::uint64_t> keys(5000);
  for (auto& k : keys) k = rng();
  for (auto k : keys) bloom.test_and_set(util::mix64(k));
  for (auto k : keys) EXPECT_TRUE(bloom.test(util::mix64(k)));
}

TEST(BloomFilter, FalsePositiveRateBounded) {
  BloomFilter bloom(20000, 8, 4);
  std::mt19937_64 rng(2);
  for (int i = 0; i < 20000; ++i) bloom.test_and_set(rng());
  int fp = 0;
  const int probes = 20000;
  for (int i = 0; i < probes; ++i) fp += bloom.test(rng());
  // Theoretical ~2.5% at 8 bits/key with 4 probes; allow slack.
  EXPECT_LT(static_cast<double>(fp) / probes, 0.05);
}

TEST(BloomFilter, TestAndSetReportsPriorState) {
  BloomFilter bloom(1000);
  EXPECT_FALSE(bloom.test_and_set(12345));
  EXPECT_TRUE(bloom.test_and_set(12345));
  EXPECT_TRUE(bloom.test(12345));
}

TEST(HyperLogLog, EstimatesWithinAdvertisedError) {
  for (const std::uint64_t truth : {100ull, 10'000ull, 1'000'000ull}) {
    HyperLogLog hll(12);
    std::mt19937_64 rng(truth);
    for (std::uint64_t i = 0; i < truth; ++i) hll.add_hash(rng());
    const double est = hll.estimate();
    EXPECT_NEAR(est, static_cast<double>(truth),
                static_cast<double>(truth) * 0.08)
        << "truth=" << truth;
  }
}

TEST(HyperLogLog, DuplicatesDoNotInflate) {
  HyperLogLog hll(12);
  std::mt19937_64 rng(5);
  std::vector<std::uint64_t> keys(1000);
  for (auto& k : keys) k = rng();
  for (int round = 0; round < 50; ++round)
    for (auto k : keys) hll.add_hash(k);
  EXPECT_NEAR(hll.estimate(), 1000.0, 100.0);
}

TEST(HyperLogLog, MergeEqualsUnion) {
  HyperLogLog a(12);
  HyperLogLog b(12);
  HyperLogLog u(12);
  std::mt19937_64 rng(7);
  for (int i = 0; i < 5000; ++i) {
    const auto h = rng();
    a.add_hash(h);
    u.add_hash(h);
  }
  for (int i = 0; i < 5000; ++i) {
    const auto h = rng();
    b.add_hash(h);
    u.add_hash(h);
  }
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.estimate(), u.estimate());
}

TEST(MisraGries, GuaranteesLowerBoundAndCoverage) {
  // Stream: heavy items i=0..9 appear 1000 times each; 20000 singletons.
  const std::size_t theta = 64;
  MisraGries<std::uint64_t> mg(theta);
  std::mt19937_64 rng(9);
  std::vector<std::uint64_t> stream;
  for (std::uint64_t h = 0; h < 10; ++h)
    for (int i = 0; i < 1000; ++i) stream.push_back(h);
  for (int i = 0; i < 20000; ++i) stream.push_back(1000 + rng() % 1000000);
  std::shuffle(stream.begin(), stream.end(), rng);

  std::unordered_map<std::uint64_t, std::uint64_t> truth;
  for (auto x : stream) ++truth[x];
  for (auto x : stream) mg.offer(x);

  EXPECT_EQ(mg.stream_length(), stream.size());
  const std::uint64_t n_over_theta = stream.size() / theta;
  for (std::uint64_t h = 0; h < 10; ++h) {
    const auto reported = mg.count(h);
    EXPECT_LE(reported, truth[h]) << "f'(x) <= f(x) violated for " << h;
    EXPECT_GE(reported + n_over_theta + 1, truth[h])
        << "f(x) - n/theta <= f'(x) violated for " << h;
    EXPECT_GT(reported, 0u) << "heavy item lost: " << h;
  }
  EXPECT_LE(mg.size(), theta);
}

TEST(MisraGries, MergePreservesHeavyItems) {
  const std::size_t theta = 32;
  MisraGries<std::uint64_t> a(theta);
  MisraGries<std::uint64_t> b(theta);
  std::mt19937_64 rng(11);
  // Item 7 is heavy in both halves.
  for (int i = 0; i < 2000; ++i) {
    a.offer(7);
    b.offer(7);
    a.offer(rng() % 100000 + 10);
    b.offer(rng() % 100000 + 10);
  }
  const auto truth_each = 2000u;
  a.merge(b);
  EXPECT_LE(a.count(7), 2 * truth_each);
  EXPECT_GE(a.count(7) + a.stream_length() / theta + 1, 2 * truth_each);
  EXPECT_LE(a.size(), theta);
}

TEST(MisraGries, GuaranteeThresholdTracksStream) {
  MisraGries<int> mg(10);
  for (int i = 0; i < 1000; ++i) mg.offer(i % 50);
  EXPECT_EQ(mg.guarantee_threshold(), 1000u / 11 + 1);
}

// ---- end-to-end k-mer analysis ----

struct AnalysisResult {
  std::map<std::string, KmerSummary> ufx;
  double cardinality = 0;
  std::uint64_t distinct = 0;
  double singleton_fraction = 0;
  std::size_t heavy_count = 0;
};

AnalysisResult run_analysis(const std::vector<seq::Read>& all_reads,
                            const KmerAnalysisConfig& cfg, int nranks) {
  pgas::ThreadTeam team(pgas::Topology{nranks, 2});
  KmerAnalysis ka(team, cfg);
  team.run([&](pgas::Rank& rank) {
    // Round-robin read distribution.
    std::vector<seq::Read> mine;
    for (std::size_t i = static_cast<std::size_t>(rank.id());
         i < all_reads.size(); i += static_cast<std::size_t>(rank.nranks()))
      mine.push_back(all_reads[i]);
    ka.run(rank, mine);
  });
  AnalysisResult result;
  for (int r = 0; r < nranks; ++r)
    for (const auto& [km, summary] : ka.ufx(r))
      result.ufx[km.to_string()] = summary;
  result.cardinality = ka.estimated_cardinality();
  result.distinct = ka.distinct_kmers();
  result.singleton_fraction = ka.singleton_fraction();
  result.heavy_count = ka.heavy_hitters().size();
  return result;
}

/// Brute-force reference: canonical k-mer counts + HQ extensions.
std::map<std::string, KmerTally> reference_tallies(
    const std::vector<seq::Read>& reads, int k, int qual_threshold) {
  std::map<std::string, KmerTally> ref;
  for (const auto& read : reads) {
    for (std::size_t i = 0; i + static_cast<std::size_t>(k) <= read.seq.size(); ++i) {
      const auto sub = read.seq.substr(i, static_cast<std::size_t>(k));
      auto km = KmerT::from_string(sub);
      const auto canon = km.canonical();
      const bool flipped = canon != km;
      auto& tally = ref[canon.to_string()];
      tally.add_count(1);
      const std::size_t ri = i + static_cast<std::size_t>(k);
      if (i > 0 && seq::phred(read.quals[i - 1]) >= qual_threshold) {
        const auto code = seq::base_to_code(read.seq[i - 1]);
        if (!flipped) tally.add_left(code);
        else tally.add_right(seq::complement_code(code));
      }
      if (ri < read.seq.size() && seq::phred(read.quals[ri]) >= qual_threshold) {
        const auto code = seq::base_to_code(read.seq[ri]);
        if (!flipped) tally.add_right(code);
        else tally.add_left(seq::complement_code(code));
      }
    }
  }
  return ref;
}

class KmerAnalysisParam : public ::testing::TestWithParam<int> {};

TEST_P(KmerAnalysisParam, MatchesBruteForceOnCleanReads) {
  const int nranks = GetParam();
  sim::GenomeConfig gc;
  gc.length = 20000;
  gc.seed = 17;
  const auto genome = sim::simulate_genome(gc);
  sim::LibraryConfig lc;
  lc.read_length = 80;
  lc.coverage = 12.0;
  lc.error_rate = 0.0;
  lc.seed = 18;
  const auto reads = sim::simulate_library(genome, lc);

  KmerAnalysisConfig cfg;
  cfg.k = 21;
  cfg.min_count = 2;
  const auto result = run_analysis(reads, cfg, nranks);
  const auto ref = reference_tallies(reads, cfg.k, cfg.qual_threshold);

  // Every reference k-mer with count >= 2 must appear with the exact count
  // and the same resolved extensions.
  std::size_t checked = 0;
  for (const auto& [km, tally] : ref) {
    if (tally.count < 2) {
      EXPECT_EQ(result.ufx.count(km), 0u) << km;
      continue;
    }
    auto it = result.ufx.find(km);
    ASSERT_NE(it, result.ufx.end()) << km;
    EXPECT_EQ(it->second.depth, tally.count) << km;
    const auto expect = summarize(tally, cfg.min_ext_count);
    EXPECT_EQ(it->second.left_ext, expect.left_ext) << km;
    EXPECT_EQ(it->second.right_ext, expect.right_ext) << km;
    ++checked;
  }
  EXPECT_GT(checked, 15000u);
  // And nothing extra.
  for (const auto& [km, summary] : result.ufx) {
    auto it = ref.find(km);
    ASSERT_NE(it, ref.end()) << km;
    EXPECT_GE(it->second.count, 2u) << km;
  }
}

INSTANTIATE_TEST_SUITE_P(Ranks, KmerAnalysisParam, ::testing::Values(1, 2, 4, 8));

TEST(KmerAnalysis, HeavyHitterPathMatchesDefaultPath) {
  // Repetitive genome -> real heavy hitters; both paths must agree exactly.
  sim::GenomeConfig gc;
  gc.length = 60000;
  gc.repeat_fraction = 0.5;
  gc.repeat_families = 3;
  gc.repeat_unit_length = 300;
  gc.seed = 19;
  const auto genome = sim::simulate_genome(gc);
  sim::LibraryConfig lc;
  lc.read_length = 100;
  lc.coverage = 10.0;
  lc.error_rate = 0.001;
  lc.seed = 20;
  const auto reads = sim::simulate_library(genome, lc);

  KmerAnalysisConfig with_hh;
  with_hh.k = 21;
  with_hh.use_heavy_hitters = true;
  with_hh.mg_capacity = 4096;
  KmerAnalysisConfig without_hh = with_hh;
  without_hh.use_heavy_hitters = false;

  const auto a = run_analysis(reads, with_hh, 4);
  const auto b = run_analysis(reads, without_hh, 4);

  EXPECT_GT(a.heavy_count, 0u) << "repetitive genome must yield heavy hitters";
  ASSERT_EQ(a.ufx.size(), b.ufx.size());
  for (const auto& [km, summary] : a.ufx) {
    auto it = b.ufx.find(km);
    ASSERT_NE(it, b.ufx.end()) << km;
    EXPECT_EQ(summary.depth, it->second.depth) << km;
    EXPECT_EQ(summary.left_ext, it->second.left_ext) << km;
    EXPECT_EQ(summary.right_ext, it->second.right_ext) << km;
  }
}

TEST(KmerAnalysis, BloomOnOffAgreeOnSurvivingKmers) {
  sim::GenomeConfig gc;
  gc.length = 30000;
  gc.seed = 23;
  const auto genome = sim::simulate_genome(gc);
  sim::LibraryConfig lc;
  lc.read_length = 100;
  lc.coverage = 10.0;
  lc.error_rate = 0.005;
  lc.seed = 24;
  const auto reads = sim::simulate_library(genome, lc);

  KmerAnalysisConfig with_bloom;
  with_bloom.k = 21;
  with_bloom.use_bloom = true;
  KmerAnalysisConfig without_bloom = with_bloom;
  without_bloom.use_bloom = false;
  without_bloom.min_count = 2;

  const auto a = run_analysis(reads, with_bloom, 4);
  const auto b = run_analysis(reads, without_bloom, 4);
  ASSERT_EQ(a.ufx.size(), b.ufx.size());
  for (const auto& [km, summary] : a.ufx) {
    auto it = b.ufx.find(km);
    ASSERT_NE(it, b.ufx.end()) << km;
    EXPECT_EQ(summary.depth, it->second.depth);
  }
}

TEST(KmerAnalysis, ErrorKmersAreExcluded) {
  sim::GenomeConfig gc;
  gc.length = 30000;
  gc.seed = 29;
  const auto genome = sim::simulate_genome(gc);
  sim::LibraryConfig lc;
  lc.read_length = 100;
  lc.coverage = 15.0;
  lc.error_rate = 0.004;
  lc.seed = 30;
  const auto reads = sim::simulate_library(genome, lc);

  KmerAnalysisConfig cfg;
  cfg.k = 25;
  const auto result = run_analysis(reads, cfg, 4);

  // Reference set of true genomic canonical k-mers.
  std::map<std::string, int> genomic;
  for (std::size_t i = 0; i + 25 <= genome.primary.size(); ++i)
    ++genomic[KmerT::from_string(genome.primary.substr(i, 25)).canonical().to_string()];

  std::size_t true_found = 0;
  std::size_t false_kept = 0;
  for (const auto& [km, summary] : result.ufx) {
    if (genomic.count(km)) ++true_found;
    else ++false_kept;
  }
  // Nearly all genomic k-mers recovered; false k-mers (error pairs that
  // collided twice) are a tiny fraction.
  EXPECT_GT(static_cast<double>(true_found) / static_cast<double>(genomic.size()), 0.98);
  EXPECT_LT(static_cast<double>(false_kept) / static_cast<double>(result.ufx.size()), 0.02);
  // With 15x coverage and ~0.4% errors, most distinct k-mers observed are
  // singletons (the "95% for human" effect, directionally).
  EXPECT_GT(result.singleton_fraction, 0.5);
}

TEST(KmerAnalysis, CardinalityEstimateIsSane) {
  sim::GenomeConfig gc;
  gc.length = 40000;
  gc.seed = 31;
  const auto genome = sim::simulate_genome(gc);
  sim::LibraryConfig lc;
  lc.read_length = 100;
  lc.coverage = 8.0;
  lc.error_rate = 0.0;
  lc.seed = 32;
  const auto reads = sim::simulate_library(genome, lc);
  KmerAnalysisConfig cfg;
  cfg.k = 31;
  const auto result = run_analysis(reads, cfg, 2);
  // Error-free: distinct canonical k-mers ~= genome length - k + 1 (minus
  // coverage gaps and palindromic merges).
  EXPECT_NEAR(result.cardinality, 40000.0, 4000.0);
  EXPECT_NEAR(static_cast<double>(result.distinct), 40000.0, 4000.0);
}

}  // namespace
}  // namespace hipmer::kcount
