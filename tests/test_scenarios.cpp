// Scenario tests: biologically motivated end-to-end situations.

#include <gtest/gtest.h>

#include <random>

#include "kcount/kmer_analysis.hpp"
#include "pipeline/pipeline.hpp"
#include "seq/dna.hpp"
#include "sim/datasets.hpp"
#include "sim/genome_sim.hpp"
#include "sim/read_sim.hpp"

namespace hipmer {
namespace {

/// Long-insert mate pairs must jump repeats that fragment the contigs:
/// the classic reason scaffolding exists. Genome = unique A + repeat R +
/// unique B + ... with R longer than a read but much shorter than the
/// mate-pair insert; contigs break at R, spans bridge it.
TEST(Scenarios, MatePairsJumpRepeatsLongerThanReads) {
  std::mt19937_64 rng(20'24);
  const auto repeat = sim::random_dna(400, rng);  // longer than any read
  std::string genome_seq;
  std::vector<std::string> uniques;
  for (int i = 0; i < 6; ++i) {
    uniques.push_back(sim::random_dna(3000, rng));
    genome_seq += uniques.back();
    if (i + 1 < 6) genome_seq += repeat;
  }
  sim::Genome genome;
  genome.primary = genome_seq;

  sim::Dataset ds;
  ds.name = "repeat_jump";
  // Short-insert library for contigs...
  sim::LibraryConfig pe;
  pe.name = "pe";
  pe.read_length = 100;
  pe.mean_insert = 300.0;
  pe.stddev_insert = 25.0;
  pe.coverage = 18.0;
  pe.error_rate = 0.0;
  pe.seed = 11;
  ds.libraries.push_back(seq::ReadLibrary{"pe", 300.0, 25.0, 100, "", true});
  ds.reads.push_back(sim::simulate_library(genome, pe));
  // ...plus a mate-pair library whose insert clears the repeat.
  sim::LibraryConfig mp;
  mp.name = "mp";
  mp.read_length = 100;
  mp.mean_insert = 2000.0;
  mp.stddev_insert = 150.0;
  mp.coverage = 6.0;
  mp.error_rate = 0.0;
  mp.seed = 13;
  ds.libraries.push_back(seq::ReadLibrary{"mp", 2000.0, 150.0, 100, "", false});
  ds.reads.push_back(sim::simulate_library(genome, mp));

  pipeline::PipelineConfig cfg;
  cfg.k = 31;
  cfg.merge_bubbles = false;
  cfg.sync_k();
  pipeline::Pipeline pipe(pgas::Topology{4, 2}, cfg);
  const auto result = pipe.run(ds.reads, ds.libraries);

  // Contigs are fragmented by the repeat (> 6 pieces)...
  EXPECT_GT(result.num_contigs, 6u);
  // ...but scaffolds bridge it: N50 well above the 3k unique-segment size.
  EXPECT_GT(result.scaffold_stats.n50, 5'000u)
      << "mate pairs should chain unique segments across the repeat";
  // And every unique segment's interior is present in some scaffold.
  int found = 0;
  for (const auto& unique_piece : uniques) {
    const auto core = unique_piece.substr(500, 2000);
    bool hit = false;
    for (const auto& rec : result.scaffolds) {
      if (rec.seq.find(core) != std::string::npos ||
          rec.seq.find(seq::revcomp(core)) != std::string::npos) {
        hit = true;
        break;
      }
    }
    found += hit;
  }
  EXPECT_EQ(found, 6);
}

/// Quality-aware extension counting: neighbors below the quality threshold
/// must not contribute extensions, which is how Meraculous avoids error
/// branches without discarding the k-mers themselves.
TEST(Scenarios, LowQualityNeighborsDoNotCreateExtensions) {
  // Two read groups covering the same 41bp sequence; in group B the base
  // after position 30 is miscalled with LOW quality. The k-mer ending at
  // position 30 must keep a unique high-quality right extension.
  std::mt19937_64 rng(31'337);
  const auto core = sim::random_dna(41, rng);
  const int k = 21;

  std::vector<seq::Read> reads;
  for (int copy = 0; copy < 6; ++copy) {
    seq::Read good;
    good.name = "g:" + std::to_string(copy) + "/0";
    good.seq = core;
    good.quals.assign(core.size(), 'I');  // q40
    reads.push_back(good);

    seq::Read bad = good;
    bad.name = "b:" + std::to_string(copy) + "/0";
    bad.seq[31] = seq::complement_base(bad.seq[31]);  // miscall
    bad.quals[31] = seq::phred_to_char(5);            // low quality
    reads.push_back(bad);
  }

  pgas::ThreadTeam team(pgas::Topology{2, 2});
  kcount::KmerAnalysisConfig cfg;
  cfg.k = k;
  cfg.min_count = 2;
  cfg.qual_threshold = 20;
  cfg.min_ext_count = 2;
  kcount::KmerAnalysis ka(team, cfg);
  team.run([&](pgas::Rank& rank) {
    ka.run(rank, rank.is_root() ? reads : std::vector<seq::Read>{});
  });

  // The k-mer at positions [11, 32) has its right neighbor at position 32;
  // the k-mer at [10, 31) has its right neighbor at the miscalled 31.
  const auto target = seq::KmerT::from_string(core.substr(10, k));
  const auto canon = target.canonical();
  bool found = false;
  for (int r = 0; r < 2; ++r) {
    for (const auto& [km, summary] : ka.ufx(r)) {
      if (!(km == canon)) continue;
      found = true;
      // Recover the forward-frame extension pair from the canonical frame.
      auto pair = seq::ExtPair{summary.left_ext, summary.right_ext};
      if (canon != target) pair = seq::flip(pair);
      // All 12 reads cover this k-mer; 6 high-quality + 6 low-quality
      // sightings of the neighbor: the unique HQ base must win (not 'F').
      EXPECT_EQ(pair.right, core[31])
          << "low-quality miscalls must not fork the extension";
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace hipmer
