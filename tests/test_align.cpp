#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <random>

#include "align/contig_store.hpp"
#include "align/mer_aligner.hpp"
#include "align/smith_waterman.hpp"
#include "seq/dna.hpp"
#include "sim/genome_sim.hpp"
#include "sim/read_sim.hpp"

namespace hipmer::align {
namespace {

// ---- Smith-Waterman / diagonal extension ----

/// Reference: full (unbanded) Smith-Waterman score by DP, O(nm).
std::int32_t naive_sw_score(std::string_view a, std::string_view b,
                            const Scoring& sc = {}) {
  std::vector<std::vector<std::int32_t>> H(a.size() + 1,
                                           std::vector<std::int32_t>(b.size() + 1, 0));
  std::int32_t best = 0;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::int32_t sub =
          a[i - 1] == b[j - 1] ? sc.match : sc.mismatch;
      H[i][j] = std::max({0, H[i - 1][j - 1] + sub, H[i - 1][j] + sc.gap,
                          H[i][j - 1] + sc.gap});
      best = std::max(best, H[i][j]);
    }
  }
  return best;
}

TEST(DiagonalExtend, ExactMatchScoresFullLength) {
  const std::string s = "ACGTACGTTGCA";
  const auto aln = diagonal_extend(s, "TTT" + s + "GGG", 3);
  EXPECT_EQ(aln.score, static_cast<std::int32_t>(s.size()));
  EXPECT_EQ(aln.a_start, 0);
  EXPECT_EQ(aln.a_end, static_cast<std::int32_t>(s.size()));
  EXPECT_EQ(aln.b_start, 3);
}

TEST(DiagonalExtend, MismatchesTrimEnds) {
  // Query differs at both ends; best segment is the middle.
  const std::string target = "AAAACGTACGTACGTAAAA";
  std::string query = target;
  query[0] = 'T';
  query[18] = 'C';
  const auto aln = diagonal_extend(query, target, 0);
  EXPECT_EQ(aln.a_start, 1);
  EXPECT_EQ(aln.a_end, 18);
  EXPECT_EQ(aln.score, 17);
}

TEST(DiagonalExtend, NoAlignmentOnDisjointStrings) {
  const auto aln = diagonal_extend("AAAA", "TTTT", 0);
  EXPECT_TRUE(aln.empty());
}

TEST(BandedSW, MatchesNaiveOnSubstitutions) {
  std::mt19937_64 rng(7);
  for (int trial = 0; trial < 30; ++trial) {
    const auto target = sim::random_dna(120, rng);
    std::string query = target.substr(10, 80);
    // Sprinkle substitutions.
    for (int e = 0; e < 4; ++e) {
      const auto pos = rng() % query.size();
      query[pos] = seq::complement_base(query[pos]);
    }
    const auto banded = banded_smith_waterman(query, target, 10, 4);
    EXPECT_EQ(banded.score, naive_sw_score(query, target)) << trial;
  }
}

TEST(BandedSW, HandlesSmallIndels) {
  std::mt19937_64 rng(11);
  const auto target = sim::random_dna(100, rng);
  // Query = target[10..70) with a 2-base deletion in the middle.
  std::string query = target.substr(10, 30) + target.substr(42, 28);
  const auto aln = banded_smith_waterman(query, target, 10, 4);
  // Full SW would score 58 matches + one 2-gap = 58 - 4; banded must find it.
  EXPECT_GE(aln.score, 50);
  EXPECT_EQ(aln.score, naive_sw_score(query, target));
}

TEST(BandedSW, RecoversCoordinates) {
  const std::string target = "GGGGGACGTACGTACGTCCCCC";
  const std::string query = "ACGTACGTACGT";
  const auto aln = banded_smith_waterman(query, target, 5, 3);
  EXPECT_EQ(aln.score, 12);
  EXPECT_EQ(aln.a_start, 0);
  EXPECT_EQ(aln.a_end, 12);
  EXPECT_EQ(aln.b_start, 5);
  EXPECT_EQ(aln.b_end, 17);
}

// ---- ContigStore ----

std::vector<dbg::Contig> make_contigs(int n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<dbg::Contig> contigs;
  for (int i = 0; i < n; ++i) {
    dbg::Contig c;
    c.id = static_cast<std::uint64_t>(i);
    c.seq = sim::random_dna(100 + static_cast<std::uint64_t>(rng() % 400), rng);
    c.avg_depth = 10.0 + static_cast<double>(i);
    c.left.code = 'F';
    c.right.code = 'X';
    contigs.push_back(std::move(c));
  }
  return contigs;
}

TEST(ContigStore, RedistributesAndFetches) {
  const int p = 4;
  pgas::ThreadTeam team(pgas::Topology{p, 2});
  const auto contigs = make_contigs(37, 3);
  ContigStore store(team);
  team.run([&](pgas::Rank& rank) {
    // Initially contigs live wherever traversal produced them: round-robin
    // by a different key than the store's id % P.
    std::vector<dbg::Contig> mine;
    for (std::size_t i = 0; i < contigs.size(); ++i)
      if (static_cast<int>(i / 10) % p == rank.id()) mine.push_back(contigs[i]);
    store.build(rank, mine);
    rank.barrier();
    // Every rank can fetch every contig, whole or windowed.
    for (const auto& c : contigs) {
      EXPECT_EQ(store.fetch_all(rank, c.id), c.seq);
      const auto window = store.fetch(rank, c.id, 10, 20);
      EXPECT_EQ(window, c.seq.substr(10, 20));
      const auto m = store.meta(rank, c.id);
      EXPECT_EQ(m.length, c.seq.size());
      EXPECT_FLOAT_EQ(m.avg_depth, static_cast<float>(c.avg_depth));
      EXPECT_EQ(m.left_term, 'F');
    }
  });
  EXPECT_EQ(store.num_contigs(), 37u);
}

TEST(ContigStore, OwnershipIsById) {
  const int p = 4;
  pgas::ThreadTeam team(pgas::Topology{p, 2});
  const auto contigs = make_contigs(20, 5);
  ContigStore store(team);
  team.run([&](pgas::Rank& rank) {
    std::vector<dbg::Contig> mine;
    if (rank.is_root()) mine = contigs;  // all start on rank 0
    store.build(rank, mine);
    rank.barrier();
    std::size_t local = 0;
    store.for_each_local(rank, [&](std::uint64_t id, const dbg::Contig&) {
      EXPECT_EQ(store.owner_of(id), rank.id());
      ++local;
    });
    EXPECT_EQ(local, 5u);  // 20 contigs over 4 ranks
  });
}

TEST(ContigStore, CacheReducesRemoteBytes) {
  const int p = 2;
  pgas::ThreadTeam team(pgas::Topology{p, 1});
  const auto contigs = make_contigs(4, 7);
  ContigStore cached(team);
  ContigStore uncached(team);
  uncached.set_cache_capacity(0);
  team.run([&](pgas::Rank& rank) {
    auto mine = rank.is_root() ? contigs : std::vector<dbg::Contig>{};
    cached.build(rank, mine);
    uncached.build(rank, mine);
  });
  team.reset_stats();
  team.run([&](pgas::Rank& rank) {
    if (rank.id() != 1) return;
    for (int round = 0; round < 50; ++round)
      (void)cached.fetch(rank, 0, 0, 50);  // contig 0 owned by rank 0: remote
  });
  const auto with_cache = team.snapshot_all()[1].total_msgs();
  team.reset_stats();
  team.run([&](pgas::Rank& rank) {
    if (rank.id() != 1) return;
    for (int round = 0; round < 50; ++round)
      (void)uncached.fetch(rank, 0, 0, 50);
  });
  const auto without_cache = team.snapshot_all()[1].total_msgs();
  EXPECT_EQ(with_cache, 1u);
  EXPECT_EQ(without_cache, 50u);
}

// ---- MerAligner ----

struct AlignFixture {
  sim::Genome genome;
  std::vector<dbg::Contig> contigs;
  std::vector<std::uint64_t> contig_offsets;  // origin of each contig
};

/// Build "contigs" directly from genome slices so alignment truth is known.
AlignFixture make_fixture(std::uint64_t genome_len, int num_contigs,
                          std::uint64_t seed) {
  AlignFixture fx;
  sim::GenomeConfig gc;
  gc.length = genome_len;
  gc.seed = seed;
  fx.genome = sim::simulate_genome(gc);
  const std::uint64_t piece = genome_len / static_cast<std::uint64_t>(num_contigs);
  for (int i = 0; i < num_contigs; ++i) {
    dbg::Contig c;
    c.id = static_cast<std::uint64_t>(i);
    const std::uint64_t start = static_cast<std::uint64_t>(i) * piece;
    c.seq = fx.genome.primary.substr(start, piece);
    fx.contigs.push_back(std::move(c));
    fx.contig_offsets.push_back(start);
  }
  return fx;
}

TEST(MerAligner, AlignsCleanReadsToTheRightPlace) {
  const int p = 4;
  const auto fx = make_fixture(40000, 8, 21);
  sim::LibraryConfig lc;
  lc.read_length = 100;
  lc.coverage = 2.0;
  lc.error_rate = 0.0;
  lc.seed = 22;
  const auto reads = sim::simulate_library(fx.genome, lc);

  pgas::ThreadTeam team(pgas::Topology{p, 2});
  ContigStore store(team);
  AlignerConfig ac;
  ac.seed_k = 31;
  MerAligner aligner(team, ac, 40000);
  std::vector<std::vector<ReadAlignment>> results(p);
  team.run([&](pgas::Rank& rank) {
    store.build(rank, rank.is_root() ? fx.contigs : std::vector<dbg::Contig>{});
    aligner.build_index(rank, store);
    std::vector<seq::Read> mine;
    for (std::size_t i = static_cast<std::size_t>(rank.id()); i < reads.size();
         i += static_cast<std::size_t>(p))
      mine.push_back(reads[i]);
    results[static_cast<std::size_t>(rank.id())] =
        aligner.align_reads(rank, store, mine, 0);
  });

  std::size_t aligned = 0;
  std::size_t full_length = 0;
  for (const auto& per_rank : results) {
    for (const auto& a : per_rank) {
      ++aligned;
      // Verify the alignment by extracting the claimed contig segment and
      // comparing against the claimed read segment.
      const auto& contig_seq = fx.contigs[a.contig_id].seq;
      ASSERT_LE(static_cast<std::size_t>(a.contig_end), contig_seq.size());
      const auto segment = contig_seq.substr(
          static_cast<std::size_t>(a.contig_start),
          static_cast<std::size_t>(a.contig_end - a.contig_start));
      // Reconstruct the read segment (reads not stored here; use genome).
      // Instead verify score consistency: perfect reads must align with
      // score == aligned length.
      EXPECT_EQ(a.score, a.aligned_len());
      EXPECT_EQ(segment.size(), static_cast<std::size_t>(a.aligned_len()));
      if (a.aligned_len() == a.read_len) ++full_length;
    }
  }
  // Nearly every read aligns; most align full-length (reads crossing contig
  // boundaries align partially to two contigs).
  EXPECT_GT(aligned, reads.size() * 95 / 100);
  EXPECT_GT(full_length, aligned * 7 / 10);
}

TEST(MerAligner, ReverseStrandReadsAlignCorrectly) {
  const auto fx = make_fixture(10000, 2, 31);
  pgas::ThreadTeam team(pgas::Topology{2, 2});
  ContigStore store(team);
  AlignerConfig ac;
  ac.seed_k = 21;
  MerAligner aligner(team, ac, 10000);

  // Hand-build reads: forward and reverse slices of contig 0.
  std::vector<seq::Read> reads;
  const auto& contig_seq = fx.contigs[0].seq;
  seq::Read fwd;
  fwd.name = "t:0/0";
  fwd.seq = contig_seq.substr(100, 80);
  fwd.quals.assign(80, 'I');
  seq::Read rev;
  rev.name = "t:1/0";
  rev.seq = seq::revcomp(contig_seq.substr(300, 80));
  rev.quals.assign(80, 'I');
  reads.push_back(fwd);
  reads.push_back(rev);

  std::vector<ReadAlignment> all;
  team.run([&](pgas::Rank& rank) {
    store.build(rank, rank.is_root() ? fx.contigs : std::vector<dbg::Contig>{});
    aligner.build_index(rank, store);
    auto mine = rank.is_root() ? reads : std::vector<seq::Read>{};
    auto result = aligner.align_reads(rank, store, mine, 0);
    if (rank.is_root()) all = result;
  });

  ASSERT_EQ(all.size(), 2u);
  std::map<std::uint64_t, ReadAlignment> by_pair;
  for (const auto& a : all) by_pair[a.pair_id] = a;
  EXPECT_TRUE(by_pair[0].read_fwd);
  EXPECT_EQ(by_pair[0].contig_start, 100);
  EXPECT_EQ(by_pair[0].contig_end, 180);
  EXPECT_FALSE(by_pair[1].read_fwd);
  EXPECT_EQ(by_pair[1].contig_start, 300);
  EXPECT_EQ(by_pair[1].contig_end, 380);
  EXPECT_EQ(by_pair[1].score, 80);
}

TEST(MerAligner, ToleratesSequencingErrors) {
  const auto fx = make_fixture(20000, 4, 41);
  sim::LibraryConfig lc;
  lc.read_length = 100;
  lc.coverage = 2.0;
  lc.error_rate = 0.01;  // ~1 error per read
  lc.seed = 42;
  const auto reads = sim::simulate_library(fx.genome, lc);

  pgas::ThreadTeam team(pgas::Topology{4, 2});
  ContigStore store(team);
  AlignerConfig ac;
  ac.seed_k = 21;
  ac.seed_stride = 8;
  MerAligner aligner(team, ac, 20000);
  std::vector<std::size_t> aligned_per_rank(4, 0);
  team.run([&](pgas::Rank& rank) {
    store.build(rank, rank.is_root() ? fx.contigs : std::vector<dbg::Contig>{});
    aligner.build_index(rank, store);
    std::vector<seq::Read> mine;
    for (std::size_t i = static_cast<std::size_t>(rank.id()); i < reads.size();
         i += 4)
      mine.push_back(reads[i]);
    std::map<std::uint64_t, bool> seen;
    for (const auto& a : aligner.align_reads(rank, store, mine, 0))
      seen[a.pair_id * 2 + static_cast<std::uint64_t>(a.mate)] = true;
    aligned_per_rank[static_cast<std::size_t>(rank.id())] = seen.size();
  });
  std::size_t aligned = 0;
  for (auto n : aligned_per_rank) aligned += n;
  EXPECT_GT(aligned, reads.size() * 90 / 100);
}

TEST(MerAligner, RepetitiveSeedsAreSkippedNotWrong) {
  // A genome that is one repeated unit: seed k-mers hit many places and
  // overflow; the aligner must not emit arbitrary wrong placements (it may
  // emit nothing).
  std::mt19937_64 rng(51);
  const auto unit = sim::random_dna(200, rng);
  std::string genome_seq;
  for (int i = 0; i < 20; ++i) genome_seq += unit;
  dbg::Contig c;
  c.id = 0;
  c.seq = genome_seq;

  pgas::ThreadTeam team(pgas::Topology{2, 2});
  ContigStore store(team);
  AlignerConfig ac;
  ac.seed_k = 21;
  MerAligner aligner(team, ac, 5000);
  std::vector<seq::Read> reads;
  seq::Read r;
  r.name = "t:0/0";
  r.seq = unit.substr(50, 100);
  r.quals.assign(100, 'I');
  reads.push_back(r);
  std::vector<ReadAlignment> all;
  team.run([&](pgas::Rank& rank) {
    store.build(rank, rank.is_root() ? std::vector<dbg::Contig>{c}
                                     : std::vector<dbg::Contig>{});
    aligner.build_index(rank, store);
    auto result = aligner.align_reads(
        rank, store, rank.is_root() ? reads : std::vector<seq::Read>{}, 0);
    if (rank.is_root()) all = result;
  });
  // Any reported alignment must be a perfect-score placement.
  for (const auto& a : all) EXPECT_EQ(a.score, a.aligned_len());
}

}  // namespace
}  // namespace hipmer::align
