// Cross-cutting property and failure-injection tests.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <random>
#include <unordered_map>

#include "io/fastq.hpp"
#include "io/parallel_fastq.hpp"
#include "kcount/bloom_filter.hpp"
#include "pgas/dist_hash_map.hpp"
#include "pgas/machine_model.hpp"
#include "pgas/thread_team.hpp"
#include "sim/genome_sim.hpp"

namespace hipmer {
namespace {

namespace fs = std::filesystem;

// ---- conservation: every message sent is received by exactly one owner ----

TEST(Conservation, SentOpsEqualReceivedOps) {
  struct SumMerge {
    void operator()(std::uint64_t& a, const std::uint64_t& b) const { a += b; }
  };
  using Map = pgas::DistHashMap<std::uint64_t, std::uint64_t,
                                std::hash<std::uint64_t>, SumMerge>;
  const int p = 6;
  pgas::ThreadTeam team(pgas::Topology{p, 2});
  Map map(team, Map::Config{.global_capacity = 1 << 14, .flush_threshold = 32});
  team.run([&](pgas::Rank& rank) {
    // Deliberately interleaves the fine and buffered store paths (the
    // checker's mixed-access rule) — the property under test is message
    // *accounting*, which must hold regardless of phase discipline, and
    // SumMerge makes the interleaving semantically safe.
    pgas::RelaxedPhase relaxed(rank, map);
    std::mt19937_64 rng(static_cast<std::uint64_t>(rank.id()) * 77 + 1);
    for (int i = 0; i < 5000; ++i) {
      if (i % 3 == 0) {
        map.update(rank, rng() % 4096, 1);
      } else {
        map.update_buffered(rank, rng() % 4096, 1);
      }
    }
    map.flush(rank);
  });
  const auto stats = team.snapshot_all();
  std::uint64_t sent_remote_ops = 0;
  std::uint64_t local_ops = 0;
  std::uint64_t received = 0;
  for (const auto& s : stats) {
    local_ops += s.local_accesses;
    received += s.recv_ops;
  }
  // Each update is either a local access on the initiator or a received op
  // at the owner; totals must account for every one of the 6*5000 updates.
  sent_remote_ops = 6 * 5000 - local_ops;
  EXPECT_EQ(received, sent_remote_ops);
}

// ---- DistHashMap randomized differential test vs std::unordered_map ----

class MapDifferential : public ::testing::TestWithParam<int> {};

TEST_P(MapDifferential, MatchesReferenceUnderRandomOps) {
  struct SumMerge {
    void operator()(std::int64_t& a, const std::int64_t& b) const { a += b; }
  };
  using Map = pgas::DistHashMap<std::uint64_t, std::int64_t,
                                std::hash<std::uint64_t>, SumMerge>;
  const int p = GetParam();
  pgas::ThreadTeam team(pgas::Topology{p, 3});
  // Deliberately undersized so overflow chains are exercised.
  Map map(team, Map::Config{.global_capacity = 256, .flush_threshold = 16});

  // Reference totals per key (deterministic: each rank updates a disjoint
  // key stripe so the interleaving does not matter... then all ranks hammer
  // shared keys with commutative deltas).
  std::map<std::uint64_t, std::int64_t> reference;
  for (int r = 0; r < p; ++r) {
    std::mt19937_64 rng(static_cast<std::uint64_t>(r) + 31);
    for (int i = 0; i < 2000; ++i) {
      const std::uint64_t key = rng() % 1500;
      const auto delta = static_cast<std::int64_t>(rng() % 9) - 4;
      reference[key] += delta;
    }
  }
  team.run([&](pgas::Rank& rank) {
    std::mt19937_64 rng(static_cast<std::uint64_t>(rank.id()) + 31);
    for (int i = 0; i < 2000; ++i) {
      const std::uint64_t key = rng() % 1500;
      const auto delta = static_cast<std::int64_t>(rng() % 9) - 4;
      map.update_buffered(rank, key, delta);
    }
    map.flush(rank);
    rank.barrier();
    // Every rank verifies a slice of the keyspace.
    for (std::uint64_t key = static_cast<std::uint64_t>(rank.id()); key < 1500;
         key += static_cast<std::uint64_t>(p)) {
      auto it = reference.find(key);
      const auto got = map.find(rank, key);
      if (it == reference.end()) {
        EXPECT_FALSE(got.has_value()) << key;
      } else {
        ASSERT_TRUE(got.has_value()) << key;
        EXPECT_EQ(*got, it->second) << key;
      }
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Ranks, MapDifferential, ::testing::Values(1, 2, 5, 9));

// ---- Bloom filter FPR across parameterizations ----

class BloomParam
    : public ::testing::TestWithParam<std::tuple<int, int, double>> {};

TEST_P(BloomParam, FalsePositiveRateWithinBound) {
  const auto [bits_per_key, probes, max_fpr] = GetParam();
  kcount::BloomFilter bloom(50'000, bits_per_key, probes);
  std::mt19937_64 rng(4242);
  for (int i = 0; i < 50'000; ++i) bloom.test_and_set(rng());
  int fp = 0;
  for (int i = 0; i < 50'000; ++i) fp += bloom.test(rng());
  EXPECT_LT(static_cast<double>(fp) / 50'000.0, max_fpr)
      << bits_per_key << " bits/key, " << probes << " probes";
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BloomParam,
    ::testing::Values(std::make_tuple(4, 3, 0.20), std::make_tuple(8, 4, 0.05),
                      std::make_tuple(12, 5, 0.02),
                      std::make_tuple(16, 6, 0.01)));

// ---- machine model sanity properties ----

TEST(MachineModelProps, MoreCommNeverFaster) {
  pgas::MachineModel model;
  pgas::CommStatsSnapshot a;
  a.work_units = 1000;
  pgas::CommStatsSnapshot b = a;
  b.offnode_msgs = 500;
  EXPECT_GT(model.rank_seconds(b), model.rank_seconds(a));
  b.onnode_msgs = 500;
  const auto c = b;
  pgas::CommStatsSnapshot d = c;
  d.offnode_bytes = 1 << 20;
  EXPECT_GT(model.rank_seconds(d), model.rank_seconds(c));
}

TEST(MachineModelProps, OffNodeCostsMoreThanOnNode) {
  pgas::MachineModel model;
  pgas::CommStatsSnapshot on;
  on.onnode_msgs = 1000;
  pgas::CommStatsSnapshot off;
  off.offnode_msgs = 1000;
  EXPECT_GT(model.rank_seconds(off), 2 * model.rank_seconds(on));
}

TEST(MachineModelProps, SerialIoDoesNotScale) {
  pgas::MachineModel model;
  // 1 GB all on one node vs spread over 8 nodes.
  std::vector<std::uint64_t> serial{1u << 30, 0, 0, 0, 0, 0, 0, 0};
  std::vector<std::uint64_t> spread(8, (1u << 30) / 8);
  EXPECT_GT(model.io_seconds_distributed(serial),
            4 * model.io_seconds_distributed(spread));
}

// ---- failure injection: corrupt FASTQ ----

class CorruptFastq : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("hipmer_corrupt_" + std::to_string(std::random_device{}()));
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }
  std::string write(const std::string& name, const std::string& content) {
    const auto path = (dir_ / name).string();
    std::ofstream out(path, std::ios::binary);
    out << content;
    return path;
  }
  fs::path dir_;
};

TEST_F(CorruptFastq, SerialParserRejectsTruncation) {
  const auto path = write("t.fastq", "@r1\nACGT\n+\nIIII\n@r2\nACGT\n");
  EXPECT_THROW(io::read_fastq(path), std::runtime_error);
}

TEST_F(CorruptFastq, ParallelReaderRejectsLengthMismatch) {
  std::string content;
  for (int i = 0; i < 50; ++i)
    content += "@r" + std::to_string(i) + "\nACGTACGT\n+\nIIIIIIII\n";
  content += "@bad\nACGTACGT\n+\nIII\n";  // qual/seq length mismatch
  const auto path = write("bad.fastq", content);
  pgas::ThreadTeam team(pgas::Topology{2, 2});
  io::ParallelFastqReader reader(path);
  EXPECT_THROW(
      team.run([&](pgas::Rank& rank) { (void)reader.read_my_records(rank); }),
      std::runtime_error);
}

TEST_F(CorruptFastq, EmptyFileYieldsNoRecords) {
  const auto path = write("empty.fastq", "");
  pgas::ThreadTeam team(pgas::Topology{3, 2});
  std::atomic<std::size_t> total{0};
  io::ParallelFastqReader reader(path);
  team.run([&](pgas::Rank& rank) {
    total += reader.read_my_records(rank).size();
  });
  EXPECT_EQ(total.load(), 0u);
}

// ---- genome simulator: hyper repeats create the advertised skew ----

TEST(GenomeSimProps, HyperRepeatCreatesFewUltraFrequentKmers) {
  sim::GenomeConfig gc;
  gc.length = 200'000;
  gc.repeat_fraction = 0.2;
  gc.repeat_families = 6;
  gc.repeat_unit_length = 300;
  gc.hyper_repeat_fraction = 0.08;
  gc.hyper_repeat_unit_length = 8;
  gc.seed = 8811;
  const auto genome = sim::simulate_genome(gc);
  std::unordered_map<std::string, int> counts;
  for (std::size_t i = 0; i + 21 <= genome.primary.size(); ++i)
    ++counts[genome.primary.substr(i, 21)];
  int ultra = 0;  // k-mers appearing >1000 times in the genome itself
  for (const auto& [k, c] : counts) ultra += c > 1000;
  EXPECT_GT(ultra, 0);
  EXPECT_LT(ultra, 64) << "hyper repeats must concentrate on few k-mers";
}

}  // namespace
}  // namespace hipmer
