#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <random>

#include "io/fasta.hpp"
#include "io/fastq.hpp"
#include "io/parallel_fastq.hpp"
#include "io/wire.hpp"
#include "pgas/thread_team.hpp"
#include "sim/genome_sim.hpp"

namespace hipmer::io {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  TempDir() {
    path_ = fs::temp_directory_path() /
            ("hipmer_test_" + std::to_string(std::random_device{}()));
    fs::create_directories(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  [[nodiscard]] std::string file(const std::string& name) const {
    return (path_ / name).string();
  }

 private:
  fs::path path_;
};

std::vector<seq::Read> make_reads(int count, int min_len, int max_len,
                                  bool variable_names, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> len_dist(min_len, max_len);
  std::vector<seq::Read> reads;
  for (int i = 0; i < count; ++i) {
    seq::Read r;
    r.name = variable_names
                 ? "lib:" + std::to_string(i) + "/0 extra metadata " +
                       std::string(static_cast<std::size_t>(rng() % 40), 'x')
                 : "r" + std::to_string(i);
    const int len = len_dist(rng);
    r.seq = sim::random_dna(static_cast<std::uint64_t>(len), rng);
    r.quals.assign(static_cast<std::size_t>(len), 'I');
    // Adversarial: some quality strings begin with '@' or '+', the
    // characters the record-boundary detector must not be fooled by.
    if (i % 3 == 0) r.quals[0] = '@';
    if (i % 5 == 0) r.quals[0] = '+';
    reads.push_back(std::move(r));
  }
  return reads;
}

TEST(Fastq, WriteReadRoundTrip) {
  TempDir dir;
  const auto reads = make_reads(100, 50, 150, true, 1);
  const auto path = dir.file("a.fastq");
  ASSERT_TRUE(write_fastq(path, reads));
  const auto back = read_fastq(path);
  ASSERT_EQ(back.size(), reads.size());
  for (std::size_t i = 0; i < reads.size(); ++i) {
    EXPECT_EQ(back[i].name, reads[i].name);
    EXPECT_EQ(back[i].seq, reads[i].seq);
    EXPECT_EQ(back[i].quals, reads[i].quals);
  }
}

TEST(Fastq, ParseRejectsMalformed) {
  EXPECT_THROW(parse_fastq("not a fastq\n"), std::runtime_error);
  EXPECT_THROW(parse_fastq("@r1\nACGT\n"), std::runtime_error);  // truncated
  EXPECT_THROW(parse_fastq("@r1\nACGT\nX\nIIII\n"), std::runtime_error);  // bad +
  EXPECT_THROW(parse_fastq("@r1\nACGT\n+\nIII\n"), std::runtime_error);  // len mismatch
  EXPECT_TRUE(parse_fastq("").empty());
}

TEST(Fasta, WriteReadRoundTripWithWrapping) {
  TempDir dir;
  std::mt19937_64 rng(3);
  std::vector<FastaRecord> records;
  for (int i = 0; i < 10; ++i)
    records.push_back(
        {"seq" + std::to_string(i), sim::random_dna(37 + static_cast<std::uint64_t>(i) * 91, rng)});
  const auto path = dir.file("a.fasta");
  ASSERT_TRUE(write_fasta(path, records, 60));
  const auto back = read_fasta(path);
  ASSERT_EQ(back.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(back[i].name, records[i].name);
    EXPECT_EQ(back[i].seq, records[i].seq);
  }
}

class ParallelFastqParam
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ParallelFastqParam, UnionOverRanksIsExactlyTheFile) {
  const auto [nranks, num_reads] = GetParam();
  TempDir dir;
  // Variable-length reads and names; adversarial quality first-chars.
  const auto reads = make_reads(num_reads, 30, 180, true, 7);
  const auto path = dir.file("p.fastq");
  ASSERT_TRUE(write_fastq(path, reads));

  pgas::ThreadTeam team(pgas::Topology{nranks, 2});
  // Small block size to force multi-block assembly paths.
  ParallelFastqReader reader(path, /*block_size=*/1024);
  std::vector<std::vector<seq::Read>> by_rank(static_cast<std::size_t>(nranks));
  team.run([&](pgas::Rank& rank) {
    by_rank[static_cast<std::size_t>(rank.id())] = reader.read_my_records(rank);
  });

  // Concatenation in rank order must equal the file exactly: no loss, no
  // duplication, order preserved.
  std::vector<seq::Read> combined;
  for (const auto& part : by_rank)
    combined.insert(combined.end(), part.begin(), part.end());
  ASSERT_EQ(combined.size(), reads.size());
  for (std::size_t i = 0; i < reads.size(); ++i) {
    EXPECT_EQ(combined[i].name, reads[i].name) << i;
    EXPECT_EQ(combined[i].seq, reads[i].seq) << i;
    EXPECT_EQ(combined[i].quals, reads[i].quals) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    RanksAndSizes, ParallelFastqParam,
    ::testing::Values(std::make_tuple(1, 50), std::make_tuple(2, 50),
                      std::make_tuple(3, 101), std::make_tuple(4, 400),
                      std::make_tuple(7, 1000), std::make_tuple(16, 37),
                      std::make_tuple(8, 8), std::make_tuple(8, 3)));

TEST(ParallelFastq, ChargesIoBytes) {
  TempDir dir;
  const auto reads = make_reads(200, 80, 120, false, 11);
  const auto path = dir.file("io.fastq");
  ASSERT_TRUE(write_fastq(path, reads));
  pgas::ThreadTeam team(pgas::Topology{4, 2});
  ParallelFastqReader reader(path);
  team.run([&](pgas::Rank& rank) { (void)reader.read_my_records(rank); });
  const auto stats = team.snapshot_all();
  std::uint64_t total_io = 0;
  for (const auto& s : stats) total_io += s.io_read_bytes;
  EXPECT_EQ(total_io, reader.file_size());
}

TEST(ParallelFastq, SamplingEstimatesRecordLength) {
  TempDir dir;
  const auto reads = make_reads(500, 100, 100, false, 13);
  const auto path = dir.file("s.fastq");
  ASSERT_TRUE(write_fastq(path, reads));
  ParallelFastqReader reader(path);
  const double avg = reader.sample_record_length(0, 256);
  // Fixed-length 100bp reads with short names: record is ~210 bytes.
  EXPECT_GT(avg, 150.0);
  EXPECT_LT(avg, 260.0);
}

TEST(ParallelFastq, BoundaryDetectionIgnoresAtSignQuality) {
  TempDir dir;
  // Every quality line starts with '@' — the classic trap.
  std::vector<seq::Read> reads;
  for (int i = 0; i < 50; ++i) {
    seq::Read r;
    r.name = "t" + std::to_string(i);
    r.seq = "ACGTACGTACGT";
    r.quals = "@IIIIIIIIIII";
    reads.push_back(std::move(r));
  }
  const auto path = dir.file("trap.fastq");
  ASSERT_TRUE(write_fastq(path, reads));
  ParallelFastqReader reader(path);
  // Probe a few interior offsets: every reported boundary must be a true
  // record start (byte after a newline, '@' + name we wrote).
  const auto full = read_fastq(path);
  ASSERT_EQ(full.size(), 50u);
  for (std::uint64_t off : {10u, 33u, 77u, 150u, 500u}) {
    const std::uint64_t b = reader.next_record_boundary(off);
    ASSERT_LT(b, reader.file_size());
    // Check alignment by reading from the boundary with the serial parser.
    pgas::ThreadTeam team(pgas::Topology{1, 1});
    // (Use the low-level check: the byte at b must begin "@t".)
    std::ifstream in(path, std::ios::binary);
    in.seekg(static_cast<std::streamoff>(b));
    std::string line;
    std::getline(in, line);
    EXPECT_EQ(line.rfind("@t", 0), 0u) << "offset " << off << " boundary " << b;
  }
}

// ---- wire framing ----

TEST(Wire, PodAndBytesRoundTrip) {
  std::vector<std::byte> buf;
  wire::Writer w(buf);
  w.put_u32(0xdeadbeef);
  w.put_u64(1ull << 40);
  struct Pod {
    double d;
    std::int16_t s;
  } pod{3.25, -7};
  w.put_pod(pod);
  w.put_bytes("hello");
  w.put_bytes("");  // zero-length field is legal

  wire::Reader r(buf);
  EXPECT_EQ(r.get_u32(), 0xdeadbeefu);
  EXPECT_EQ(r.get_u64(), 1ull << 40);
  const auto back = r.get_pod<Pod>();
  EXPECT_EQ(back.d, 3.25);
  EXPECT_EQ(back.s, -7);
  EXPECT_EQ(r.get_bytes(), "hello");
  EXPECT_EQ(r.get_bytes(), "");
  EXPECT_TRUE(r.done());
  EXPECT_FALSE(r.truncated());
}

TEST(Wire, PayloadsMayContainAnyByte) {
  // The newline-framed serializers this layer replaced could not carry
  // newlines (or NULs) inside a field; length prefixes can.
  std::vector<std::byte> buf;
  wire::Writer w(buf);
  const std::string nasty("line1\nline2\0@+\n", 15);
  w.put_bytes(nasty);
  w.put_bytes("\n\n\n");
  wire::Reader r(buf);
  EXPECT_EQ(r.get_bytes(), nasty);
  EXPECT_EQ(r.get_bytes(), "\n\n\n");
  EXPECT_TRUE(r.done());
}

TEST(Wire, ReadRecordsConcatenateAndRoundTrip) {
  // Streams from different senders concatenate without sentinels — the
  // alltoallv receive path parses sender boundaries implicitly.
  std::vector<std::byte> buf;
  wire::Writer w(buf);
  const auto reads = make_reads(17, 20, 80, true, 424242);
  for (const auto& read : reads) wire::put_read(w, read);

  std::vector<seq::Read> out;
  ASSERT_TRUE(wire::get_reads(buf, out));
  ASSERT_EQ(out.size(), reads.size());
  for (std::size_t i = 0; i < reads.size(); ++i) {
    EXPECT_EQ(out[i].name, reads[i].name);
    EXPECT_EQ(out[i].seq, reads[i].seq);
    EXPECT_EQ(out[i].quals, reads[i].quals);
  }
}

TEST(Wire, TruncatedStreamIsDetectedNotMisparsed) {
  std::vector<std::byte> buf;
  wire::Writer w(buf);
  seq::Read read;
  read.name = "r1";
  read.seq = "ACGTACGT";
  read.quals = "IIIIIIII";
  wire::put_read(w, read);
  wire::put_read(w, read);

  // Chop the buffer at every possible point: the first record either
  // parses whole or the truncation flag trips — never a corrupt record.
  for (std::size_t cut = 0; cut < buf.size(); ++cut) {
    std::vector<std::byte> partial(buf.begin(),
                                   buf.begin() + static_cast<std::ptrdiff_t>(cut));
    std::vector<seq::Read> out;
    const bool ok = wire::get_reads(partial, out);
    if (ok) {
      for (const auto& r : out) {
        EXPECT_EQ(r.name, read.name);
        EXPECT_EQ(r.seq, read.seq);
        EXPECT_EQ(r.quals, read.quals);
      }
    } else {
      EXPECT_LT(out.size(), 2u);
    }
  }
  std::vector<seq::Read> out;
  EXPECT_TRUE(wire::get_reads(buf, out));
  EXPECT_EQ(out.size(), 2u);
}

}  // namespace
}  // namespace hipmer::io
