// Durability layer: the write-ahead job journal (codec round-trips,
// torn-tail healing, every-truncation-point and every-byte-flip sweeps,
// replay == in-memory state over random transition sequences), the
// seeded filesystem fault shim (every injected fault leaves a
// recoverable store across journal / SnapshotStore / ArtifactCache),
// and a kill -9 + restart of the real served CLI recovering its backlog
// byte-identically.

#include <gtest/gtest.h>

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "ckpt/manifest.hpp"
#include "ckpt/snapshot_store.hpp"
#include "io/fs_faults.hpp"
#include "server/artifact_cache.hpp"
#include "server/client.hpp"
#include "server/job_queue.hpp"
#include "server/job_server.hpp"
#include "server/journal.hpp"
#include "util/hash.hpp"

namespace hipmer {
namespace {

namespace fs = std::filesystem;
using server::JobJournal;
using server::JobState;
using server::JournalEvent;
using server::JournalEventType;

fs::path fresh_dir(const std::string& tag) {
  const auto dir = fs::temp_directory_path() /
                   ("hipmer-journal-" + tag + "-" +
                    std::to_string(::getpid()) + "-" +
                    std::to_string(std::random_device{}()));
  fs::create_directories(dir);
  return dir;
}

/// A SUBMIT event exercising every spec field, two libraries included.
JournalEvent full_submit(std::uint64_t id) {
  JournalEvent e;
  e.type = JournalEventType::kSubmit;
  e.job_id = id;
  server::JobSpec& s = e.spec;
  s.id = id;
  s.tenant = "tenant-" + std::to_string(id);
  s.priority = 3;
  s.output_path = "/tmp/out" + std::to_string(id) + ".fasta";
  s.k = 25;
  s.min_count = 3;
  s.rounds = 2;
  s.diploid = true;
  s.resume = false;
  s.use_cache = true;
  s.kill_spec = "1@contig_generation";
  s.chaos_spec = "drop=0.02,dup=0.01";
  s.chaos_seed = 1299721;
  s.estimated_bytes = 123456789;
  s.max_attempts = 4;
  s.deadline_ms = 60000;
  s.submit_wall_ms = 1754700000000ull;
  for (int i = 0; i < 2; ++i) {
    seq::ReadLibrary lib;
    lib.name = "lib" + std::to_string(i);
    lib.fastq_path = "/data/reads" + std::to_string(i) + ".fastq";
    lib.mean_insert = 395.5 + i;
    lib.for_contigging = i == 0;
    s.libraries.push_back(lib);
  }
  return e;
}

JournalEvent make_event(JournalEventType type, std::uint64_t id,
                        std::uint32_t attempt = 0,
                        const std::string& error = "") {
  JournalEvent e;
  e.type = type;
  e.job_id = id;
  e.attempt = attempt;
  e.error = error;
  return e;
}

JournalEvent finish_event(std::uint64_t id, JobState state,
                          std::uint64_t scaffolds = 0,
                          const std::string& error = "") {
  JournalEvent e;
  e.type = JournalEventType::kFinish;
  e.job_id = id;
  e.final_state = state;
  e.scaffolds = scaffolds;
  e.scaffold_bases = scaffolds * 1000;
  e.cache_hit = scaffolds % 2 == 0;
  e.error = error;
  return e;
}

void expect_events_equal(const JournalEvent& a, const JournalEvent& b,
                         const std::string& what) {
  EXPECT_EQ(a.type, b.type) << what;
  EXPECT_EQ(a.job_id, b.job_id) << what;
  EXPECT_EQ(a.attempt, b.attempt) << what;
  EXPECT_EQ(a.final_state, b.final_state) << what;
  EXPECT_EQ(a.scaffolds, b.scaffolds) << what;
  EXPECT_EQ(a.scaffold_bases, b.scaffold_bases) << what;
  EXPECT_EQ(a.cache_hit, b.cache_hit) << what;
  EXPECT_EQ(a.error, b.error) << what;
  EXPECT_EQ(a.spec.tenant, b.spec.tenant) << what;
  EXPECT_EQ(a.spec.priority, b.spec.priority) << what;
  EXPECT_EQ(a.spec.output_path, b.spec.output_path) << what;
  EXPECT_EQ(a.spec.k, b.spec.k) << what;
  EXPECT_EQ(a.spec.min_count, b.spec.min_count) << what;
  EXPECT_EQ(a.spec.rounds, b.spec.rounds) << what;
  EXPECT_EQ(a.spec.diploid, b.spec.diploid) << what;
  EXPECT_EQ(a.spec.resume, b.spec.resume) << what;
  EXPECT_EQ(a.spec.use_cache, b.spec.use_cache) << what;
  EXPECT_EQ(a.spec.kill_spec, b.spec.kill_spec) << what;
  EXPECT_EQ(a.spec.chaos_spec, b.spec.chaos_spec) << what;
  EXPECT_EQ(a.spec.chaos_seed, b.spec.chaos_seed) << what;
  EXPECT_EQ(a.spec.estimated_bytes, b.spec.estimated_bytes) << what;
  EXPECT_EQ(a.spec.max_attempts, b.spec.max_attempts) << what;
  EXPECT_EQ(a.spec.deadline_ms, b.spec.deadline_ms) << what;
  EXPECT_EQ(a.spec.submit_wall_ms, b.spec.submit_wall_ms) << what;
  ASSERT_EQ(a.spec.libraries.size(), b.spec.libraries.size()) << what;
  for (std::size_t i = 0; i < a.spec.libraries.size(); ++i) {
    EXPECT_EQ(a.spec.libraries[i].name, b.spec.libraries[i].name) << what;
    EXPECT_EQ(a.spec.libraries[i].fastq_path, b.spec.libraries[i].fastq_path)
        << what;
    EXPECT_EQ(a.spec.libraries[i].mean_insert,
              b.spec.libraries[i].mean_insert)
        << what;
    EXPECT_EQ(a.spec.libraries[i].for_contigging,
              b.spec.libraries[i].for_contigging)
        << what;
  }
}

// ---- payload / record codec ----------------------------------------------

TEST(JournalCodec, FullSubmitRoundTripsThroughRecordFrame) {
  const auto event = full_submit(42);
  const auto record = server::encode_journal_record(event);
  const auto back = server::decode_journal_record(record);
  ASSERT_TRUE(back.has_value());
  expect_events_equal(event, *back, "submit");
}

TEST(JournalCodec, EveryEventTypeRoundTrips) {
  const JournalEvent events[] = {
      full_submit(1),
      make_event(JournalEventType::kStart, 2, 1),
      make_event(JournalEventType::kCancel, 3),
      make_event(JournalEventType::kFail, 4, 2, "rank 1 killed"),
      finish_event(5, JobState::kQuarantined, 7, "attempt 0: killed"),
  };
  for (const auto& event : events) {
    const auto back =
        server::decode_journal_record(server::encode_journal_record(event));
    ASSERT_TRUE(back.has_value()) << journal_event_name(event.type);
    expect_events_equal(event, *back, journal_event_name(event.type));
  }
}

TEST(JournalCodec, RejectsTrailingBytesAndBadEnums) {
  auto payload = server::encode_journal_event(full_submit(1));
  auto extended = payload;
  extended.push_back(std::byte{0});
  EXPECT_FALSE(server::decode_journal_event(extended).has_value());

  // type = 0 and type = 6 are outside the enum.
  for (std::uint8_t bad : {std::uint8_t{0}, std::uint8_t{6}}) {
    auto tampered = payload;
    tampered[0] = std::byte{bad};
    EXPECT_FALSE(server::decode_journal_event(tampered).has_value())
        << static_cast<int>(bad);
  }
  // final_state sits after type(4) + job_id(8) + attempt(4); 6 is past
  // kQuarantined.
  auto bad_state = payload;
  bad_state[16] = std::byte{6};
  EXPECT_FALSE(server::decode_journal_event(bad_state).has_value());
}

TEST(JournalCodec, EveryTruncationPointRejects) {
  const auto record = server::encode_journal_record(full_submit(7));
  for (std::size_t cut = 0; cut < record.size(); ++cut) {
    const std::vector<std::byte> prefix(record.begin(),
                                        record.begin() +
                                            static_cast<std::ptrdiff_t>(cut));
    EXPECT_FALSE(server::decode_journal_record(prefix).has_value())
        << "cut at " << cut << "/" << record.size();
  }
}

TEST(JournalCodec, EveryByteFlipRejects) {
  const auto record = server::encode_journal_record(full_submit(7));
  // A full-byte invert and a single-bit flip at every position: the CRC
  // frame (or the length check) must reject every one.
  for (const std::uint8_t mask : {std::uint8_t{0xFF}, std::uint8_t{0x01}}) {
    for (std::size_t pos = 0; pos < record.size(); ++pos) {
      auto mutated = record;
      mutated[pos] ^= std::byte{mask};
      EXPECT_FALSE(server::decode_journal_record(mutated).has_value())
          << "flip 0x" << std::hex << static_cast<int>(mask) << " at "
          << std::dec << pos;
    }
  }
}

// ---- journal file: append / replay / torn tails ---------------------------

std::vector<JournalEvent> sample_sequence() {
  std::vector<JournalEvent> events;
  events.push_back(full_submit(1));
  events.push_back(make_event(JournalEventType::kStart, 1, 0));
  events.push_back(make_event(JournalEventType::kFail, 1, 0, "rank killed"));
  events.push_back(full_submit(2));
  events.push_back(make_event(JournalEventType::kStart, 1, 1));
  events.push_back(finish_event(1, JobState::kDone, 12));
  return events;
}

TEST(JournalFile, AppendThenReplayRoundTrips) {
  const auto dir = fresh_dir("roundtrip");
  const auto path = (dir / "journal.bin").string();
  const auto events = sample_sequence();
  {
    JobJournal journal(path);
    auto replay = journal.open_and_replay();
    ASSERT_TRUE(replay.has_value());
    EXPECT_TRUE(replay->events.empty());
    EXPECT_FALSE(replay->tail_truncated);
    for (const auto& event : events) {
      std::string error;
      ASSERT_TRUE(journal.append(event, &error)) << error;
    }
  }
  JobJournal reopened(path);
  const auto replay = reopened.open_and_replay();
  ASSERT_TRUE(replay.has_value());
  EXPECT_FALSE(replay->tail_truncated);
  ASSERT_EQ(replay->events.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i)
    expect_events_equal(events[i], replay->events[i],
                        "event " + std::to_string(i));
  fs::remove_all(dir);
}

TEST(JournalFile, TornTailIsTruncatedAndJournalHeals) {
  const auto dir = fresh_dir("torn");
  const auto path = (dir / "journal.bin").string();
  {
    JobJournal journal(path);
    ASSERT_TRUE(journal.open_and_replay().has_value());
    ASSERT_TRUE(journal.append(full_submit(1)));
    ASSERT_TRUE(journal.append(make_event(JournalEventType::kStart, 1)));
  }
  const auto valid_size = fs::file_size(path);
  {
    // A crash mid-append: garbage bytes after the last valid record.
    std::ofstream torn(path, std::ios::binary | std::ios::app);
    torn.write("\x30\x00\x00\x00partial", 11);
  }
  {
    JobJournal journal(path);
    const auto replay = journal.open_and_replay();
    ASSERT_TRUE(replay.has_value());
    EXPECT_TRUE(replay->tail_truncated);
    EXPECT_EQ(replay->events.size(), 2u);
    EXPECT_EQ(replay->valid_bytes, valid_size);
    // The torn bytes are gone from disk and appends extend a valid prefix.
    EXPECT_EQ(fs::file_size(path), valid_size);
    ASSERT_TRUE(journal.append(finish_event(1, JobState::kDone, 3)));
  }
  JobJournal reopened(path);
  const auto replay = reopened.open_and_replay();
  ASSERT_TRUE(replay.has_value());
  EXPECT_FALSE(replay->tail_truncated);
  ASSERT_EQ(replay->events.size(), 3u);
  EXPECT_EQ(replay->events[2].type, JournalEventType::kFinish);
  fs::remove_all(dir);
}

TEST(JournalFile, ForeignHeaderIsRotatedAsideNotDestroyed) {
  const auto dir = fresh_dir("foreign");
  const auto path = (dir / "journal.bin").string();
  {
    std::ofstream foreign(path, std::ios::binary);
    foreign << "this is not a journal at all, it has other plans";
  }
  JobJournal journal(path);
  const auto replay = journal.open_and_replay();
  ASSERT_TRUE(replay.has_value());
  EXPECT_TRUE(replay->events.empty());
  EXPECT_TRUE(replay->tail_truncated);
  EXPECT_TRUE(fs::exists(path + ".corrupt"));
  ASSERT_TRUE(journal.append(full_submit(1)));
  fs::remove_all(dir);
}

TEST(JournalFile, TornHeaderStartsFresh) {
  const auto dir = fresh_dir("tornhead");
  const auto path = (dir / "journal.bin").string();
  {
    std::ofstream torn(path, std::ios::binary);
    torn.write("HJ", 2);  // died mid-creation
  }
  JobJournal journal(path);
  const auto replay = journal.open_and_replay();
  ASSERT_TRUE(replay.has_value());
  EXPECT_TRUE(replay->events.empty());
  EXPECT_TRUE(replay->tail_truncated);
  ASSERT_TRUE(journal.append(full_submit(1)));
  fs::remove_all(dir);
}

TEST(JournalFile, EveryTruncationPointReplaysAValidPrefixAndStaysAppendable) {
  const auto dir = fresh_dir("cut");
  const auto path = (dir / "journal.bin").string();
  const auto events = sample_sequence();
  std::vector<std::uint64_t> boundaries;  // file size after each record
  {
    JobJournal journal(path);
    ASSERT_TRUE(journal.open_and_replay().has_value());
    for (const auto& event : events) {
      ASSERT_TRUE(journal.append(event));
      boundaries.push_back(fs::file_size(path));
    }
  }
  std::vector<std::byte> whole;
  {
    auto bytes = io::read_file(path);
    ASSERT_TRUE(bytes.has_value());
    whole = std::move(*bytes);
  }
  const std::size_t header = 8;
  const auto cut_path = (dir / "cut.bin").string();
  for (std::size_t cut = 0; cut < whole.size(); ++cut) {
    {
      std::ofstream out(cut_path, std::ios::binary | std::ios::trunc);
      out.write(reinterpret_cast<const char*>(whole.data()),
                static_cast<std::streamsize>(cut));
    }
    // How many whole records fit below the cut?
    std::size_t expect = 0;
    while (expect < boundaries.size() && boundaries[expect] <= cut) ++expect;
    JobJournal journal(cut_path);
    const auto replay = journal.open_and_replay();
    ASSERT_TRUE(replay.has_value()) << "cut " << cut;
    ASSERT_EQ(replay->events.size(), expect) << "cut " << cut;
    for (std::size_t i = 0; i < expect; ++i)
      EXPECT_EQ(replay->events[i].type, events[i].type) << "cut " << cut;
    // Anything beyond the valid prefix was truncated away...
    if (cut > header) {
      EXPECT_EQ(replay->valid_bytes,
                expect > 0 ? boundaries[expect - 1] : header)
          << "cut " << cut;
    }
    // ...and the healed journal accepts and persists a new record.
    ASSERT_TRUE(journal.append(finish_event(99, JobState::kFailed)))
        << "cut " << cut;
    JobJournal reread(cut_path);
    const auto again = reread.open_and_replay();
    ASSERT_TRUE(again.has_value()) << "cut " << cut;
    ASSERT_EQ(again->events.size(), expect + 1) << "cut " << cut;
    EXPECT_EQ(again->events.back().job_id, 99u) << "cut " << cut;
  }
  fs::remove_all(dir);
}

TEST(JournalFile, EveryByteFlipReplaysAValidPrefix) {
  const auto dir = fresh_dir("flip");
  const auto path = (dir / "journal.bin").string();
  const auto events = sample_sequence();
  std::vector<std::uint64_t> boundaries;
  {
    JobJournal journal(path);
    ASSERT_TRUE(journal.open_and_replay().has_value());
    for (const auto& event : events) {
      ASSERT_TRUE(journal.append(event));
      boundaries.push_back(fs::file_size(path));
    }
  }
  std::vector<std::byte> whole;
  {
    auto bytes = io::read_file(path);
    ASSERT_TRUE(bytes.has_value());
    whole = std::move(*bytes);
  }
  const std::size_t header = 8;
  const auto flip_path = (dir / "flip.bin").string();
  for (std::size_t pos = 0; pos < whole.size(); ++pos) {
    auto mutated = whole;
    mutated[pos] ^= std::byte{0xFF};
    {
      std::ofstream out(flip_path, std::ios::binary | std::ios::trunc);
      out.write(reinterpret_cast<const char*>(mutated.data()),
                static_cast<std::streamsize>(mutated.size()));
    }
    JobJournal journal(flip_path);
    const auto replay = journal.open_and_replay();
    ASSERT_TRUE(replay.has_value()) << "flip " << pos;
    if (pos < header) {
      // Header flip: a foreign file, rotated aside; nothing replayed.
      EXPECT_TRUE(replay->events.empty()) << "flip " << pos;
      EXPECT_TRUE(replay->tail_truncated) << "flip " << pos;
      std::error_code ec;
      fs::remove(flip_path + ".corrupt", ec);
      continue;
    }
    // The record containing the flipped byte and everything after it are
    // dropped; everything before replays intact.
    std::size_t expect = 0;
    while (expect < boundaries.size() && boundaries[expect] <= pos) ++expect;
    EXPECT_TRUE(replay->tail_truncated) << "flip " << pos;
    ASSERT_EQ(replay->events.size(), expect) << "flip " << pos;
    for (std::size_t i = 0; i < expect; ++i)
      EXPECT_EQ(replay->events[i].job_id, events[i].job_id) << "flip " << pos;
  }
  fs::remove_all(dir);
}

// ---- replay semantics: reconstruct_jobs -----------------------------------

TEST(ReconstructJobs, LifecycleStatesLandWhereTheQueueWouldPutThem) {
  std::vector<JournalEvent> events;
  events.push_back(full_submit(1));  // stays queued
  events.push_back(full_submit(2));  // running at crash
  events.push_back(make_event(JournalEventType::kStart, 2, 0));
  events.push_back(full_submit(3));  // cancelled while queued
  events.push_back(make_event(JournalEventType::kCancel, 3));
  events.push_back(full_submit(4));  // finished clean
  events.push_back(make_event(JournalEventType::kStart, 4, 0));
  events.push_back(finish_event(4, JobState::kDone, 9));
  events.push_back(full_submit(5));  // failed once, requeued
  events.push_back(make_event(JournalEventType::kStart, 5, 0));
  events.push_back(make_event(JournalEventType::kFail, 5, 0, "rank killed"));
  events.push_back(full_submit(6));  // cancelled while running
  events.push_back(make_event(JournalEventType::kStart, 6, 0));
  events.push_back(make_event(JournalEventType::kCancel, 6));

  const auto jobs = server::reconstruct_jobs(events);
  ASSERT_EQ(jobs.size(), 6u);
  EXPECT_EQ(jobs.at(1).state, JobState::kQueued);
  EXPECT_EQ(jobs.at(2).state, JobState::kRunning);
  EXPECT_EQ(jobs.at(3).state, JobState::kCancelled);
  EXPECT_EQ(jobs.at(4).state, JobState::kDone);
  EXPECT_EQ(jobs.at(4).outcome.scaffolds, 9u);
  EXPECT_EQ(jobs.at(5).state, JobState::kQueued);
  EXPECT_EQ(jobs.at(5).attempt, 1u);
  EXPECT_NE(jobs.at(5).fault_log.find("attempt 0: rank killed"),
            std::string::npos);
  // A cancel seen while running is honored over a resume.
  EXPECT_EQ(jobs.at(6).state, JobState::kCancelled);
  EXPECT_EQ(jobs.at(6).outcome.error, "cancelled before restart");
}

TEST(ReconstructJobs, OrphansSkippedAndTerminalNeverOverwritten) {
  std::vector<JournalEvent> events;
  events.push_back(make_event(JournalEventType::kStart, 77, 0));  // orphan
  events.push_back(finish_event(77, JobState::kDone, 1));         // orphan
  events.push_back(full_submit(1));
  events.push_back(make_event(JournalEventType::kStart, 1, 0));
  events.push_back(finish_event(1, JobState::kDone, 5));
  // Nothing after a terminal record may change the job.
  events.push_back(make_event(JournalEventType::kStart, 1, 1));
  events.push_back(make_event(JournalEventType::kCancel, 1));
  const auto jobs = server::reconstruct_jobs(events);
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_EQ(jobs.at(1).state, JobState::kDone);
  EXPECT_EQ(jobs.at(1).outcome.scaffolds, 5u);
}

TEST(ReconstructJobs, CompactedSubmitCarriesAttemptAndFaultLog) {
  auto submit = full_submit(1);
  submit.attempt = 2;
  submit.error = "attempt 0: killed; attempt 1: killed";
  const auto jobs = server::reconstruct_jobs({submit});
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_EQ(jobs.at(1).state, JobState::kQueued);
  EXPECT_EQ(jobs.at(1).attempt, 2u);
  EXPECT_EQ(jobs.at(1).fault_log, "attempt 0: killed; attempt 1: killed");
}

/// Reference simulator for the property test: an independent little state
/// machine tracking what the live queue + executor would believe, written
/// against the server's documented semantics rather than the replay code.
struct SimJob {
  JobState state = JobState::kQueued;
  std::uint32_t attempt = 0;
  bool cancel_flag = false;
  std::string fault_log;
  std::string terminal_error;
  std::uint64_t scaffolds = 0;
};

std::map<std::uint64_t, SimJob> simulate(
    const std::vector<JournalEvent>& events) {
  std::map<std::uint64_t, SimJob> jobs;
  for (const auto& e : events) {
    if (e.type == JournalEventType::kSubmit) {
      SimJob fresh;
      fresh.attempt = e.attempt;
      fresh.fault_log = e.error;
      jobs[e.job_id] = fresh;
      continue;
    }
    auto it = jobs.find(e.job_id);
    if (it == jobs.end()) continue;  // orphan: nothing to recover
    SimJob& job = it->second;
    if (job.state == JobState::kDone || job.state == JobState::kFailed ||
        job.state == JobState::kCancelled ||
        job.state == JobState::kQuarantined)
      continue;  // terminal is forever
    if (e.type == JournalEventType::kStart) {
      job.state = JobState::kRunning;
      job.attempt = e.attempt;
    } else if (e.type == JournalEventType::kCancel) {
      if (job.state == JobState::kQueued)
        job.state = JobState::kCancelled;
      else
        job.cancel_flag = true;
    } else if (e.type == JournalEventType::kFail) {
      job.state = JobState::kQueued;
      if (!job.fault_log.empty()) job.fault_log += "; ";
      job.fault_log +=
          "attempt " + std::to_string(e.attempt) + ": " + e.error;
      job.attempt = e.attempt + 1;
    } else if (e.type == JournalEventType::kFinish) {
      job.state = e.final_state;
      job.scaffolds = e.scaffolds;
      job.terminal_error = e.error;
    }
  }
  for (auto& [id, job] : jobs)
    if (job.state == JobState::kRunning && job.cancel_flag) {
      job.state = JobState::kCancelled;
      job.terminal_error = "cancelled before restart";
    }
  return jobs;
}

TEST(ReconstructJobs, PropertyReplayMatchesInMemoryStateOverRandomHistories) {
  for (std::uint32_t seed = 0; seed < 200; ++seed) {
    std::mt19937 rng(seed);
    std::vector<JournalEvent> events;
    const int jobs_n = 1 + static_cast<int>(rng() % 6);
    // Per-job scripts of plausible-and-not-so-plausible transitions,
    // interleaved round-robin-ish across jobs the way a live log would be.
    std::vector<std::vector<JournalEvent>> scripts;
    for (int j = 1; j <= jobs_n; ++j) {
      const auto id = static_cast<std::uint64_t>(j);
      std::vector<JournalEvent> script;
      if (rng() % 10 != 0) {  // 10%: orphan transitions without a SUBMIT
        auto submit = full_submit(id);
        if (rng() % 5 == 0) {  // compacted-journal shape
          submit.attempt = static_cast<std::uint32_t>(rng() % 3);
          submit.error = submit.attempt > 0 ? "attempt 0: prior" : "";
        }
        script.push_back(submit);
      }
      std::uint32_t attempt = 0;
      const int steps = static_cast<int>(rng() % 4);
      for (int s = 0; s < steps; ++s) {
        script.push_back(make_event(JournalEventType::kStart, id, attempt));
        switch (rng() % 4) {
          case 0:
            script.push_back(make_event(JournalEventType::kFail, id, attempt,
                                        "injected"));
            ++attempt;
            break;
          case 1:
            script.push_back(finish_event(
                id,
                std::vector<JobState>{JobState::kDone, JobState::kFailed,
                                      JobState::kQuarantined}[rng() % 3],
                rng() % 100));
            break;
          case 2:
            script.push_back(make_event(JournalEventType::kCancel, id));
            break;
          default:
            break;  // crash while running: no further record
        }
      }
      scripts.push_back(std::move(script));
    }
    std::vector<std::size_t> cursor(scripts.size(), 0);
    bool progressed = true;
    while (progressed) {
      progressed = false;
      for (std::size_t j = 0; j < scripts.size(); ++j) {
        // Advance a random number of this job's events to interleave.
        std::size_t take = rng() % 3;
        while (take-- > 0 && cursor[j] < scripts[j].size()) {
          events.push_back(scripts[j][cursor[j]++]);
          progressed = true;
        }
      }
      if (!progressed)
        for (std::size_t j = 0; j < scripts.size(); ++j)
          while (cursor[j] < scripts[j].size()) {
            events.push_back(scripts[j][cursor[j]++]);
            progressed = true;
          }
      if (progressed == false) break;
      if (events.size() > 200) break;
    }

    const auto expected = simulate(events);
    const auto recovered = server::reconstruct_jobs(events);
    ASSERT_EQ(recovered.size(), expected.size()) << "seed " << seed;
    for (const auto& [id, sim] : expected) {
      const auto it = recovered.find(id);
      ASSERT_NE(it, recovered.end()) << "seed " << seed << " job " << id;
      EXPECT_EQ(it->second.state, sim.state) << "seed " << seed << " job "
                                             << id;
      EXPECT_EQ(it->second.attempt, sim.attempt)
          << "seed " << seed << " job " << id;
      EXPECT_EQ(it->second.fault_log, sim.fault_log)
          << "seed " << seed << " job " << id;
      EXPECT_EQ(it->second.outcome.error, sim.terminal_error)
          << "seed " << seed << " job " << id;
      EXPECT_EQ(it->second.outcome.scaffolds, sim.scaffolds)
          << "seed " << seed << " job " << id;
    }

    // Every 10th history also goes through the full file layer: append
    // every event, replay, reconstruct — same answer.
    if (seed % 10 == 0) {
      const auto dir = fresh_dir("prop" + std::to_string(seed));
      const auto path = (dir / "journal.bin").string();
      {
        JobJournal journal(path);
        ASSERT_TRUE(journal.open_and_replay().has_value());
        for (const auto& event : events) ASSERT_TRUE(journal.append(event));
      }
      JobJournal journal(path);
      const auto replay = journal.open_and_replay();
      ASSERT_TRUE(replay.has_value());
      const auto from_disk = server::reconstruct_jobs(replay->events);
      ASSERT_EQ(from_disk.size(), expected.size()) << "seed " << seed;
      for (const auto& [id, sim] : expected)
        EXPECT_EQ(from_disk.at(id).state, sim.state)
            << "seed " << seed << " job " << id;
      fs::remove_all(dir);
    }
  }
}

// ---- retry backoff --------------------------------------------------------

TEST(RetryPolicy, BackoffDoublesWithBoundedJitterAndCaps) {
  const std::uint32_t base = 200;
  for (std::uint32_t attempt = 0; attempt < 12; ++attempt) {
    const std::uint64_t b = static_cast<std::uint64_t>(base)
                            << (attempt < 6 ? attempt : 6);
    for (std::uint64_t job = 1; job < 20; ++job) {
      const auto ms = server::JobServer::retry_backoff_ms(base, attempt, job);
      EXPECT_GE(ms, b - b / 4) << attempt << "/" << job;
      EXPECT_LE(ms, b + b / 4) << attempt << "/" << job;
      // Deterministic: same inputs, same wait.
      EXPECT_EQ(ms, server::JobServer::retry_backoff_ms(base, attempt, job));
    }
  }
}

// ---- fs fault shim --------------------------------------------------------

TEST(FsFaultPlan, ParsesTheGrammar) {
  auto plan = io::FsFaultPlan::parse(
      7, "enospc=0.05,eio=0.02,short=0.1,crash_before=0.01,"
         "crash_after=0.03,path=cache");
  EXPECT_EQ(plan.seed, 7u);
  EXPECT_DOUBLE_EQ(plan.probs.enospc, 0.05);
  EXPECT_DOUBLE_EQ(plan.probs.eio, 0.02);
  EXPECT_DOUBLE_EQ(plan.probs.short_write, 0.1);
  EXPECT_DOUBLE_EQ(plan.probs.crash_before_rename, 0.01);
  EXPECT_DOUBLE_EQ(plan.probs.crash_after_rename, 0.03);
  EXPECT_EQ(plan.path_filter, "cache");
  EXPECT_TRUE(plan.enabled());
  EXPECT_EQ(plan.one_shot_op, -1);

  auto one_shot = io::FsFaultPlan::parse(1, "at=3:crash_before");
  EXPECT_EQ(one_shot.one_shot_op, 3);
  EXPECT_EQ(one_shot.one_shot_fate, io::FsFate::kCrashBeforeRename);
  EXPECT_TRUE(one_shot.enabled());

  EXPECT_FALSE(io::FsFaultPlan{}.enabled());
  EXPECT_THROW((void)io::FsFaultPlan::parse(1, "bogus=0.5"),
               std::invalid_argument);
  EXPECT_THROW((void)io::FsFaultPlan::parse(1, "at=1:volcano"),
               std::invalid_argument);
  EXPECT_THROW((void)io::FsFaultPlan::parse(1, "enospc=notafloat"),
               std::invalid_argument);
}

TEST(FsFaults, SeededFatesAreDeterministicAndFilterable) {
  auto roll = [](std::uint64_t seed, const std::string& filter) {
    io::FsFaultPlan plan;
    plan.seed = seed;
    plan.probs.eio = 0.5;
    plan.path_filter = filter;
    io::ScopedFsFaults armed(plan);
    std::vector<io::FsFate> fates;
    for (int i = 0; i < 32; ++i)
      fates.push_back(
          io::FsFaults::instance().next_fate("/x/store/file.bin"));
    return fates;
  };
  const auto a = roll(11, "");
  const auto b = roll(11, "");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, roll(12, ""));
  bool any_fault = false;
  for (const auto fate : a) any_fault |= fate != io::FsFate::kOk;
  EXPECT_TRUE(any_fault);

  // Path filter: non-matching paths are never touched.
  const auto filtered = roll(11, "no-such-substring");
  for (const auto fate : filtered) EXPECT_EQ(fate, io::FsFate::kOk);

  // Disarmed: everything is kOk.
  EXPECT_EQ(io::FsFaults::instance().next_fate("/x/store/file.bin"),
            io::FsFate::kOk);
}

TEST(FsFaults, OneShotHitsExactlyTheNthOperation) {
  io::ScopedFsFaults armed(io::FsFaultPlan::parse(1, "at=2:eio"));
  auto& shim = io::FsFaults::instance();
  EXPECT_EQ(shim.next_fate("/a"), io::FsFate::kOk);
  EXPECT_EQ(shim.next_fate("/b"), io::FsFate::kOk);
  EXPECT_EQ(shim.next_fate("/c"), io::FsFate::kEio);
  EXPECT_EQ(shim.next_fate("/d"), io::FsFate::kOk);
  EXPECT_EQ(shim.injected(), 1u);
  EXPECT_EQ(shim.operations(), 4u);
}

TEST(FsFaults, AtomicWriteLeavesExactlyTheDebrisEachFateDescribes) {
  const auto dir = fresh_dir("atomic");
  const std::string payload = "forty-two bytes of very durable payload!!";
  const auto target = dir / "file.bin";
  const auto tmp = dir / "file.bin.tmp";

  auto write_under = [&](const std::string& spec) {
    std::error_code ec;
    fs::remove(target, ec);
    fs::remove(tmp, ec);
    io::ScopedFsFaults armed(io::FsFaultPlan::parse(1, spec));
    return io::write_file_atomic(target, payload.data(), payload.size());
  };

  EXPECT_EQ(write_under("at=0:enospc"), io::AtomicWriteStatus::kFailed);
  EXPECT_FALSE(fs::exists(target));
  EXPECT_FALSE(fs::exists(tmp));

  EXPECT_EQ(write_under("at=0:eio"), io::AtomicWriteStatus::kFailed);
  EXPECT_FALSE(fs::exists(target));
  EXPECT_FALSE(fs::exists(tmp));

  EXPECT_EQ(write_under("at=0:short"), io::AtomicWriteStatus::kCrashed);
  EXPECT_FALSE(fs::exists(target));
  ASSERT_TRUE(fs::exists(tmp));
  EXPECT_LT(fs::file_size(tmp), payload.size());

  EXPECT_EQ(write_under("at=0:crash_before"),
            io::AtomicWriteStatus::kCrashed);
  EXPECT_FALSE(fs::exists(target));
  ASSERT_TRUE(fs::exists(tmp));
  EXPECT_EQ(fs::file_size(tmp), payload.size());

  EXPECT_EQ(write_under("at=0:crash_after"), io::AtomicWriteStatus::kCrashed);
  EXPECT_FALSE(fs::exists(tmp));
  ASSERT_TRUE(fs::exists(target));
  const auto bytes = io::read_file(target);
  ASSERT_TRUE(bytes.has_value());
  EXPECT_EQ(std::string(reinterpret_cast<const char*>(bytes->data()),
                        bytes->size()),
            payload);

  // The startup sweep reclaims whatever a crash left behind.
  EXPECT_EQ(write_under("at=0:crash_before"),
            io::AtomicWriteStatus::kCrashed);
  ASSERT_TRUE(fs::exists(tmp));
  EXPECT_GE(io::sweep_tmp_files(dir), 1u);
  EXPECT_FALSE(fs::exists(tmp));

  // Nothing armed: the plain path works.
  EXPECT_EQ(io::write_file_atomic(target, payload.data(), payload.size()),
            io::AtomicWriteStatus::kOk);
  fs::remove_all(dir);
}

// ---- every-injection-point sweeps over the durable stores -----------------

TEST(FaultSweep, JournalAppendSurvivesEveryFateByName) {
  struct Case {
    const char* spec;
    const char* expect_error;
    std::size_t expect_events;  // records visible on replay afterwards
  };
  const Case cases[] = {
      {"at=0:enospc", "journal-enospc", 2},
      {"at=0:eio", "journal-eio", 2},
      {"at=0:short", "journal-short-write", 2},
      {"at=0:crash_before", "journal-short-write", 2},
      // crash-after-rename: the bytes landed, the ack didn't —
      // at-least-once is the safe direction for a write-ahead log.
      {"at=0:crash_after", "journal-crash", 3},
  };
  for (const auto& c : cases) {
    const auto dir = fresh_dir("jfault");
    const auto path = (dir / "journal.bin").string();
    {
      JobJournal journal(path);
      ASSERT_TRUE(journal.open_and_replay().has_value());
      ASSERT_TRUE(journal.append(full_submit(1)));
      ASSERT_TRUE(journal.append(make_event(JournalEventType::kStart, 1)));
      std::string error;
      {
        io::ScopedFsFaults armed(io::FsFaultPlan::parse(1, c.spec));
        EXPECT_FALSE(journal.append(finish_event(1, JobState::kDone), &error))
            << c.spec;
      }
      EXPECT_EQ(error, c.expect_error) << c.spec;
      // The journal stays usable the moment the fault clears.
      ASSERT_TRUE(journal.append(make_event(JournalEventType::kCancel, 1)))
          << c.spec;
    }
    JobJournal reopened(path);
    const auto replay = reopened.open_and_replay();
    ASSERT_TRUE(replay.has_value()) << c.spec;
    EXPECT_FALSE(replay->tail_truncated) << c.spec;
    EXPECT_EQ(replay->events.size(), c.expect_events + 1) << c.spec;
    EXPECT_EQ(replay->events.back().type, JournalEventType::kCancel)
        << c.spec;
    fs::remove_all(dir);
  }
}

TEST(FaultSweep, JournalCompactionFailureKeepsTheOldLog) {
  for (const char* spec :
       {"at=0:enospc", "at=0:eio", "at=0:short", "at=0:crash_before"}) {
    const auto dir = fresh_dir("jcompact");
    const auto path = (dir / "journal.bin").string();
    JobJournal journal(path);
    ASSERT_TRUE(journal.open_and_replay().has_value());
    ASSERT_TRUE(journal.append(full_submit(1)));
    ASSERT_TRUE(journal.append(full_submit(2)));
    {
      io::ScopedFsFaults armed(io::FsFaultPlan::parse(1, spec));
      EXPECT_FALSE(journal.compact({full_submit(2)})) << spec;
    }
    // Old log intact, journal reopened for appends.
    ASSERT_TRUE(journal.append(make_event(JournalEventType::kStart, 2)));
    JobJournal reopened(path);
    const auto replay = reopened.open_and_replay();
    ASSERT_TRUE(replay.has_value()) << spec;
    ASSERT_EQ(replay->events.size(), 3u) << spec;
    EXPECT_EQ(replay->events[0].job_id, 1u) << spec;
    fs::remove_all(dir);
  }
}

/// Drive one full SnapshotStore commit (2 shards + manifest) under a
/// one-shot fault at operation `op`, then verify the reopened store is
/// either a complete valid checkpoint or a clean absence — never torn.
void snapshot_store_drill(std::int64_t op, const char* fate) {
  const auto dir = fresh_dir("ckptfault");
  const std::vector<std::byte> payloads[2] = {
      std::vector<std::byte>(64, std::byte{0xAB}),
      std::vector<std::byte>(96, std::byte{0xCD}),
  };
  bool committed = false;
  {
    ckpt::SnapshotStore store((dir / "run").string());
    ckpt::Manifest manifest;
    ckpt::StageEntry entry;
    entry.stage = "ufx";
    entry.seq = 1;
    entry.fingerprint = 0xFEED;
    entry.shard_count = 2;
    for (const auto& payload : payloads) {
      entry.shard_bytes.push_back(payload.size());
      entry.shard_crcs.push_back(
          util::crc32c(payload.data(), payload.size()));
    }
    const std::string spec =
        "at=" + std::to_string(op) + ":" + fate;
    io::ScopedFsFaults armed(io::FsFaultPlan::parse(1, spec));
    bool ok = store.prepare_entry(entry);
    for (std::uint32_t i = 0; ok && i < 2; ++i)
      ok = store.write_shard(entry, i, payloads[i]);
    if (ok) {
      // Shards landed; the manifest rename is the commit point.
      manifest.entries.push_back(entry);
      committed = store.write_manifest(manifest);
    }
  }
  // Reopen the way Checkpointer does: sweep debris, then trust only what
  // the manifest references — and everything it references must verify.
  ckpt::SnapshotStore store((dir / "run").string());
  store.sweep_orphans();
  for (const auto& leftover : fs::recursive_directory_iterator(dir))
    EXPECT_NE(leftover.path().extension(), ".tmp")
        << "op " << op << " " << fate;
  const auto manifest = store.load_manifest();
  if (committed) {
    ASSERT_TRUE(manifest.has_value()) << "op " << op;
  }
  if (manifest.has_value()) {
    for (const auto& entry : manifest->entries)
      for (std::uint32_t i = 0; i < entry.shard_count; ++i) {
        const auto shard = store.read_shard(entry, i);
        ASSERT_TRUE(shard.has_value())
            << "op " << op << " " << fate << " shard " << i
            << ": manifest references an unreadable shard";
      }
  }
  fs::remove_all(dir);
}

TEST(FaultSweep, SnapshotStoreRecoversFromEveryInjectionPoint) {
  // 3 durable writes per commit (2 shards + manifest); sweep a fault onto
  // each, for every fate.
  for (std::int64_t op = 0; op < 3; ++op)
    for (const char* fate :
         {"enospc", "eio", "short", "crash_before", "crash_after"})
      snapshot_store_drill(op, fate);
}

/// Same drill for the artifact cache: a faulted store must read back as
/// either the full artifact or a clean miss on a fresh cache instance.
void artifact_cache_drill(std::int64_t op, const char* fate) {
  const auto dir = fresh_dir("cachefault");
  const std::uint64_t key = 0xC0FFEE;
  const std::vector<std::vector<std::byte>> shards = {
      std::vector<std::byte>(48, std::byte{0x11}),
      std::vector<std::byte>(32, std::byte{0x22}),
  };
  ckpt::AuxStats aux;
  aux.distinct_kmers = 1234;
  aux.singleton_fraction = 0.25;
  aux.heavy_hitters = 7;
  bool stored = false;
  {
    server::ArtifactCache cache(dir / "cache");
    const std::string spec = "at=" + std::to_string(op) + ":" + fate;
    io::ScopedFsFaults armed(io::FsFaultPlan::parse(1, spec));
    stored = cache.store_ufx(key, shards, aux);
  }
  // A fresh instance sweeps crash debris on construction.
  server::ArtifactCache cache(dir / "cache");
  for (const auto& leftover : fs::recursive_directory_iterator(dir))
    EXPECT_NE(leftover.path().extension(), ".tmp") << "op " << op << " "
                                                   << fate;
  const auto artifact = cache.lookup_ufx(key);
  if (stored) {
    ASSERT_TRUE(artifact.has_value()) << "op " << op << " " << fate;
  }
  if (artifact.has_value()) {
    // Valid-or-miss: a hit must be the exact artifact, never torn.
    ASSERT_EQ(artifact->shards.size(), shards.size())
        << "op " << op << " " << fate;
    for (std::size_t i = 0; i < shards.size(); ++i)
      EXPECT_EQ(artifact->shards[i], shards[i])
          << "op " << op << " " << fate;
    EXPECT_EQ(artifact->aux.distinct_kmers, aux.distinct_kmers);
  }
  fs::remove_all(dir);
}

TEST(FaultSweep, ArtifactCacheRecoversFromEveryInjectionPoint) {
  // store_ufx = 2 shard writes + 1 meta write.
  for (std::int64_t op = 0; op < 3; ++op)
    for (const char* fate :
         {"enospc", "eio", "short", "crash_before", "crash_after"})
      artifact_cache_drill(op, fate);
}

TEST(FaultSweep, SnapshotStoreSweepRemovesOrphanTmpFiles) {
  const auto dir = fresh_dir("orphans");
  ckpt::SnapshotStore store((dir / "run").string());
  fs::create_directories(dir / "run" / "ufx.1");
  {
    std::ofstream a(dir / "run" / "manifest.bin.tmp");
    a << "torn";
    std::ofstream b(dir / "run" / "ufx.1" / "shard.0.tmp");
    b << "torn";
    std::ofstream keep(dir / "run" / "ufx.1" / "shard.0");
    keep << "committed";
  }
  EXPECT_EQ(store.sweep_orphans(), 2u);
  EXPECT_FALSE(fs::exists(dir / "run" / "manifest.bin.tmp"));
  EXPECT_FALSE(fs::exists(dir / "run" / "ufx.1" / "shard.0.tmp"));
  EXPECT_TRUE(fs::exists(dir / "run" / "ufx.1" / "shard.0"));
  fs::remove_all(dir);
}

// ---- kill -9 + restart through the real CLI -------------------------------

#ifdef HIPMER_CLI_BIN

class ServedDurability : public ::testing::Test {
 protected:
  static std::string dir_;
  static std::string fastq_;

  static void SetUpTestSuite() {
    char tmpl[] = "/tmp/hipmer-durability-XXXXXX";
    ASSERT_NE(mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
    ASSERT_EQ(run(std::string(HIPMER_CLI_BIN) + " simulate human --genome " +
                  "20000 --seed 11 --out-dir " + dir_),
              0);
    fastq_ = dir_ + "/human_like_pe395.fastq";
    std::ifstream probe(fastq_);
    ASSERT_TRUE(probe.good()) << "simulated FASTQ missing: " << fastq_;
    // One-shot references for byte-identity of the recovered jobs (the
    // long job runs 3 scaffolding rounds; the riders run the default 1).
    ASSERT_EQ(run(std::string(HIPMER_CLI_BIN) + " assemble --reads " +
                  fastq_ + " --insert 395 --k 21 --ranks 4 --min-count 2 " +
                  "--out " + dir_ + "/ref.fasta"),
              0);
    ASSERT_EQ(run(std::string(HIPMER_CLI_BIN) + " assemble --reads " +
                  fastq_ + " --insert 395 --k 21 --ranks 4 --min-count 2 " +
                  "--rounds 3 --out " + dir_ + "/ref3.fasta"),
              0);
  }

  static void TearDownTestSuite() {
    if (!dir_.empty()) run("rm -rf " + dir_);
  }

  static int run(const std::string& cmd) {
    const int rc = std::system((cmd + " > /dev/null 2>&1").c_str());
    return WIFEXITED(rc) ? WEXITSTATUS(rc) : -1;
  }

  /// fork + exec `hipmer serve` so the test holds the real PID to SIGKILL.
  static pid_t spawn_server(const std::string& sock,
                            const std::string& state) {
    const pid_t pid = ::fork();
    if (pid == 0) {
      const int devnull = ::open("/dev/null", O_WRONLY);
      if (devnull >= 0) {
        ::dup2(devnull, 1);
        ::dup2(devnull, 2);
        ::close(devnull);
      }
      ::execl(HIPMER_CLI_BIN, HIPMER_CLI_BIN, "serve", "--listen",
              sock.c_str(), "--state-dir", state.c_str(), "--ranks", "4",
              "--retry-backoff-ms", "50", static_cast<char*>(nullptr));
      ::_exit(127);
    }
    return pid;
  }

  static std::optional<server::Response> request(const std::string& sock,
                                                 const std::string& command) {
    return server::request_with_retry(sock, command, 100, 50);
  }

  static std::uint64_t submit(const std::string& sock,
                              const std::string& out,
                              const std::string& extra = "") {
    const auto resp =
        request(sock, "SUBMIT reads=" + fastq_ + ":395 out=" + dir_ + "/" +
                          out + " k=21 min_count=2" +
                          (extra.empty() ? "" : " " + extra));
    if (!resp || !resp->ok()) return 0;
    return std::strtoull(
        server::response_field(resp->first(), "id", "0").c_str(), nullptr,
        10);
  }

  static std::string await(const std::string& sock, std::uint64_t id) {
    for (int i = 0; i < 6000; ++i) {
      const auto resp = request(sock, "STATUS id=" + std::to_string(id));
      if (!resp || !resp->ok()) return "protocol-error";
      const auto state = server::response_field(resp->first(), "state");
      if (state == "done" || state == "failed" || state == "cancelled" ||
          state == "quarantined")
        return state;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return "timeout";
  }

  static std::string slurp(const std::string& name) {
    std::ifstream in(dir_ + "/" + name, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
  }
};

std::string ServedDurability::dir_;
std::string ServedDurability::fastq_;

TEST_F(ServedDurability, Kill9MidJobRestartsWithBacklogAndResumesIdentically) {
  const std::string sock = dir_ + "/ctl.sock";
  const std::string state = dir_ + "/state";
  pid_t pid = spawn_server(sock, state);
  ASSERT_GT(pid, 0);

  // Three jobs: one long job to die mid-run, two queued behind it.
  const auto j1 = submit(sock, "recov1.fasta", "rounds=3");
  const auto j2 = submit(sock, "recov2.fasta");
  const auto j3 = submit(sock, "recov3.fasta");
  ASSERT_TRUE(j1 && j2 && j3) << "submissions failed";

  // Wait until job 1 is actually running, give it a beat to make stage
  // progress, then kill the server the unfriendly way.
  std::string state_seen;
  for (int i = 0; i < 1000; ++i) {
    const auto resp = request(sock, "STATUS id=" + std::to_string(j1));
    ASSERT_TRUE(resp.has_value());
    state_seen = server::response_field(resp->first(), "state");
    if (state_seen == "running") break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(state_seen, "running");
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  ASSERT_EQ(::kill(pid, SIGKILL), 0);
  int wstatus = 0;
  ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(wstatus));

  // Restart on the same state dir: the journal re-admits all three.
  pid = spawn_server(sock, state);
  ASSERT_GT(pid, 0);
  EXPECT_EQ(await(sock, j1), "done");
  EXPECT_EQ(await(sock, j2), "done");
  EXPECT_EQ(await(sock, j3), "done");

  // Byte-identical to the one-shot reference — including the job that
  // resumed from the dead server's checkpoint.
  const auto ref = slurp("ref.fasta");
  const auto ref3 = slurp("ref3.fasta");
  ASSERT_FALSE(ref.empty());
  ASSERT_FALSE(ref3.empty());
  EXPECT_EQ(slurp("recov1.fasta"), ref3);
  EXPECT_EQ(slurp("recov2.fasta"), ref);
  EXPECT_EQ(slurp("recov3.fasta"), ref);

  const auto resp = request(sock, "SHUTDOWN");
  EXPECT_TRUE(resp.has_value());
  ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
}

#endif  // HIPMER_CLI_BIN

}  // namespace
}  // namespace hipmer
