#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <exception>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "align/alignment_wire.hpp"
#include "align/contig_store.hpp"
#include "ckpt/artifacts.hpp"
#include "ckpt/manifest.hpp"
#include "dbg/contig_wire.hpp"
#include "io/seqdb.hpp"
#include "io/wire.hpp"
#include "pgas/fabric_wire.hpp"
#include "pgas/map_wire.hpp"
#include "pgas/transport.hpp"
#include "pipeline/read_shuffle.hpp"
#include "seq/read_store.hpp"
#include "server/artifact_cache.hpp"
#include "server/journal.hpp"
#include "server/protocol.hpp"

/// One corruption-sweep adapter per schema in tools/wirecheck/schemas.json.
///
/// Each adapter supplies a pristine encoding of a representative message and
/// a decode function returning the message's *fingerprint* — its canonical
/// re-encoding (or an explicit dump where re-encoding is not a function of
/// the decoded value alone). The sweep driver in test_wire_schemas.cpp then
/// demands, for every single-byte flip and every truncation point:
///   - reject-mode schemas (own CRC): decode fails outright;
///   - detect-mode schemas (integrity delegated to an envelope): decode
///     fails OR the fingerprint changes. A corruption that decodes back to
///     the original message means the flipped byte was dead on the wire —
///     the exact defect class that motivated the ALN2 format bump.
///
/// Samples are chosen so every wire byte is live: 32-base pure-ACGT reads
/// fill packed words exactly, wide-spread qualities force the verbatim qual
/// mode (the nibble modes pad half a byte on odd lengths), and the seqdb
/// read is 30 bases so the packed-tail canonicality check is exercised.
namespace hipmer::testing {

using Bytes = std::vector<std::byte>;
/// nullopt = the decoder rejected the buffer.
using Fingerprint = std::optional<Bytes>;

struct WireSweepCase {
  std::string schema;
  Bytes bytes;
  std::function<Fingerprint(const Bytes&)> decode;
};

namespace sweep_detail {

/// Run a decode body, mapping any exception to a rejection. Codecs throw
/// io::wire errors (or std::runtime_error for seqdb); std::bad_alloc from a
/// corrupted count would also be a rejection, but the decoders validate
/// counts before allocating, so it should never actually fire.
template <typename F>
Fingerprint guard(F&& f) {
  try {
    return std::forward<F>(f)();
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

inline Bytes to_bytes(const std::string& s) {
  const auto* p = reinterpret_cast<const std::byte*>(s.data());
  return Bytes(p, p + s.size());
}

inline std::string to_string(const Bytes& b) {
  return std::string(reinterpret_cast<const char*>(b.data()), b.size());
}

/// 32-base pure-ACGT sequence (exactly one packed word, no dead bits) with
/// qualities spread across four values >15 apart: RLE would double them,
/// the band modes cannot cover the range cheaply, so encode_quals picks
/// verbatim — the one qual mode with no padding slack.
inline seq::Read sample_read(int i) {
  seq::Read read;
  read.name = "pair" + std::to_string(i) + "/" + std::to_string(1 + i % 2);
  static constexpr const char* kSeqs[] = {
      "ACGTACGTTTGCAACGGATCCATGCGTAACGT",
      "TTGCAGGCACGTACGTAACGGATCACGTCCAT",
      "GATCACGTCCATTTGCAGGCACGTAACGACGT",
  };
  read.seq = kSeqs[i % 3];
  read.quals.reserve(read.seq.size());
  for (std::size_t j = 0; j < read.seq.size(); ++j)
    read.quals.push_back(static_cast<char>(33 + 17 * ((j + i) % 4)));
  return read;
}

inline align::ReadAlignment sample_alignment(int i) {
  align::ReadAlignment a;
  a.pair_id = 4200 + i;
  a.mate = i % 2;
  a.library = 1;
  a.contig_id = 7 + static_cast<std::uint32_t>(i);
  a.contig_len = 1500;
  a.read_start = 3;
  a.read_end = 30;
  a.read_len = 32;
  a.contig_start = 100 + i;
  a.contig_end = 127 + i;
  a.read_fwd = i % 2 == 0;
  a.score = 27;
  return a;
}

inline dbg::Contig sample_contig(int i) {
  dbg::Contig contig;
  contig.id = 90 + i;
  contig.seq = "ACGTTGCAGGCATCCATGCGTAACG";
  contig.avg_depth = 12.5 + i;
  contig.left.code = 'F';
  contig.left.has_junction = true;
  contig.left.junction = seq::KmerT::from_string("ACGTTGCAGGCATCCATGCGT");
  contig.right.code = 'X';
  contig.right.has_junction = false;
  return contig;
}

}  // namespace sweep_detail

/// All sweep adapters, keyed by schema name; test_wire_schemas.cpp checks
/// this list and the generated manifest rows cover each other exactly.
inline std::vector<WireSweepCase> wire_sweep_cases() {
  using namespace sweep_detail;
  namespace wire = io::wire;
  std::vector<WireSweepCase> cases;

  // ---- io: framed read record ----
  {
    Bytes buf;
    wire::Writer w(buf);
    wire::put_read(w, sample_read(0));
    cases.push_back({"read_record", std::move(buf), [](const Bytes& b) {
                       return guard([&] {
                         wire::Reader r(b);
                         const seq::Read read = wire::get_read_checked(r);
                         if (!r.done()) return Fingerprint{};
                         Bytes out;
                         wire::Writer w2(out);
                         wire::put_read(w2, read);
                         return Fingerprint{std::move(out)};
                       });
                     }});
  }

  // ---- io: seqdb record (30 bases: packed tail canonicality is live) ----
  {
    seq::Read sample = sample_read(1);
    sample.seq.resize(30);
    sample.quals.resize(30);
    std::string enc;
    io::seqdb_serialize_record(enc, sample);
    cases.push_back({"seqdb_record", to_bytes(enc), [](const Bytes& b) {
                       return guard([&] {
                         const std::string buf = to_string(b);
                         std::size_t pos = 0;
                         const seq::Read read =
                             io::seqdb_deserialize_record(buf, pos);
                         if (pos != buf.size()) return Fingerprint{};
                         std::string out;
                         io::seqdb_serialize_record(out, read);
                         return Fingerprint{to_bytes(out)};
                       });
                     }});
  }

  // ---- align: alignment record ----
  {
    Bytes buf;
    wire::Writer w(buf);
    align::put_alignment(w, sample_alignment(0));
    cases.push_back({"alignment_record", std::move(buf), [](const Bytes& b) {
                       return guard([&] {
                         wire::Reader r(b);
                         const auto a = align::get_alignment_checked(r);
                         if (!r.done()) return Fingerprint{};
                         Bytes out;
                         wire::Writer w2(out);
                         align::put_alignment(w2, a);
                         return Fingerprint{std::move(out)};
                       });
                     }});
  }

  // ---- align: contig meta ----
  {
    align::ContigStore::Meta meta;
    meta.length = 1234;
    meta.avg_depth = 8.25F;
    meta.left_term = 'F';
    meta.right_term = 'D';
    Bytes buf;
    wire::Writer w(buf);
    align::put_contig_meta(w, meta);
    cases.push_back({"contig_meta", std::move(buf), [](const Bytes& b) {
                       return guard([&] {
                         wire::Reader r(b);
                         const auto m = align::get_contig_meta_checked(r);
                         if (!r.done()) return Fingerprint{};
                         Bytes out;
                         wire::Writer w2(out);
                         align::put_contig_meta(w2, m);
                         return Fingerprint{std::move(out)};
                       });
                     }});
  }

  // ---- dbg: contig record ----
  {
    Bytes buf;
    dbg::serialize_contig(buf, sample_contig(0));
    cases.push_back({"contig_record", std::move(buf), [](const Bytes& b) {
                       return guard([&] {
                         wire::Reader r(b);
                         const dbg::Contig contig = dbg::get_contig_checked(r);
                         if (!r.done()) return Fingerprint{};
                         Bytes out;
                         dbg::serialize_contig(out, contig);
                         return Fingerprint{std::move(out)};
                       });
                     }});
  }

  // ---- ckpt: reads shard (plain) ----
  {
    std::vector<std::vector<seq::Read>> libs(2);
    libs[0] = {sample_read(0), sample_read(1)};
    libs[1] = {sample_read(2)};
    cases.push_back({"ckpt_reads_shard", ckpt::encode_reads_shard(libs),
                     [](const Bytes& b) {
                       return guard([&]() -> Fingerprint {
                         auto libs2 = ckpt::decode_reads_shard(b);
                         if (!libs2) return std::nullopt;
                         return ckpt::encode_reads_shard(*libs2);
                       });
                     }});
  }

  // ---- ckpt: reads shard (packed) ----
  {
    std::vector<seq::ReadStore> stores;
    stores.emplace_back(true);
    stores.back().append(sample_read(0));
    stores.back().append(sample_read(1));
    stores.emplace_back(true);
    stores.back().append(sample_read(2));
    cases.push_back({"ckpt_packed_reads_shard",
                     ckpt::encode_packed_reads_shard(stores),
                     [](const Bytes& b) {
                       return guard([&]() -> Fingerprint {
                         auto libs = ckpt::decode_reads_shard(b);
                         if (!libs) return std::nullopt;
                         std::vector<seq::ReadStore> stores2;
                         for (const auto& reads : *libs) {
                           stores2.emplace_back(true);
                           for (const auto& read : reads)
                             stores2.back().append(read);
                         }
                         return ckpt::encode_packed_reads_shard(stores2);
                       });
                     }});
  }

  // ---- ckpt: ufx shard ----
  {
    std::vector<kcount::UfxRecord> records(2);
    records[0].first = seq::KmerT::from_string("ACGTTGCAGGCATCCATGCGTAACGACGTAC");
    records[0].second = {17, 'A', 'T'};
    records[1].first = seq::KmerT::from_string("TTGCAGGCACGTACGTAACGGATCACGTCCA");
    records[1].second = {3, 'F', 'G'};
    cases.push_back({"ckpt_ufx_shard", ckpt::encode_ufx_shard(records),
                     [](const Bytes& b) {
                       return guard([&]() -> Fingerprint {
                         auto records2 = ckpt::decode_ufx_shard(b);
                         if (!records2) return std::nullopt;
                         return ckpt::encode_ufx_shard(*records2);
                       });
                     }});
  }

  // ---- ckpt: contigs shard ----
  {
    const dbg::Contig c0 = sample_contig(0);
    const dbg::Contig c1 = sample_contig(1);
    cases.push_back({"ckpt_contigs_shard",
                     ckpt::encode_contigs_shard({&c0, &c1}),
                     [](const Bytes& b) {
                       return guard([&]() -> Fingerprint {
                         auto contigs = ckpt::decode_contigs_shard(b);
                         if (!contigs) return std::nullopt;
                         std::vector<const dbg::Contig*> ptrs;
                         for (const auto& c : *contigs) ptrs.push_back(&c);
                         return ckpt::encode_contigs_shard(ptrs);
                       });
                     }});
  }

  // ---- ckpt: alignments shard ----
  {
    cases.push_back({"ckpt_alignments_shard",
                     ckpt::encode_alignments_shard(
                         {sample_alignment(0), sample_alignment(1)}),
                     [](const Bytes& b) {
                       return guard([&]() -> Fingerprint {
                         auto aligns = ckpt::decode_alignments_shard(b);
                         if (!aligns) return std::nullopt;
                         return ckpt::encode_alignments_shard(*aligns);
                       });
                     }});
  }

  // ---- ckpt: scaffolds shard ----
  {
    ckpt::ScaffoldExtras extras;
    extras.closure_stats = {10, 7, 3, 2, 2, 5, 1};
    extras.inserts.push_back({215.5, 12.25, 4096});
    const std::vector<io::FastaRecord> records = {
        {"scaffold_0", "ACGTTGCAGGCATCCATGCGTAACG"},
        {"scaffold_1", "TTGCAGGCACGTACGTAACGGATCA"},
    };
    // Fingerprint is an explicit dump: re-encoding regenerates record
    // indices from position, so it could not represent a corrupted index
    // (the corruption would vanish from the re-encoding and the sweep would
    // wrongly report the index bytes as dead).
    cases.push_back({"ckpt_scaffolds_shard",
                     ckpt::encode_scaffolds_shard(records, 0, 1, &extras),
                     [](const Bytes& b) {
                       return guard([&]() -> Fingerprint {
                         auto shard = ckpt::decode_scaffolds_shard(b);
                         if (!shard) return std::nullopt;
                         Bytes out;
                         wire::Writer w(out);
                         w.put_pod<std::uint8_t>(shard->extras ? 1 : 0);
                         if (shard->extras) {
                           w.put_pod(shard->extras->closure_stats);
                           for (const auto& est : shard->extras->inserts)
                             w.put_pod(est);
                         }
                         for (const auto& [index, record] : shard->records) {
                           w.put_u64(index);
                           w.put_bytes(record.name);
                           w.put_bytes(record.seq);
                         }
                         return Fingerprint{std::move(out)};
                       });
                     }});
  }

  // ---- ckpt: manifest (CRC: reject mode) ----
  {
    ckpt::Manifest manifest;
    ckpt::StageEntry entry;
    entry.stage = "contigs";
    entry.seq = 3;
    entry.fingerprint = 0x1122334455667788ULL;
    entry.shard_count = 2;
    entry.shard_bytes = {1000, 1200};
    entry.shard_crcs = {0xDEADBEEF, 0x12345678};
    entry.aux.distinct_kmers = 5000;
    entry.aux.singleton_fraction = 0.25;
    entry.aux.heavy_hitters = 3;
    entry.aux.num_contigs = 42;
    entry.aux.contig_stats.num_sequences = 42;
    entry.aux.contig_stats.total_length = 12345;
    entry.aux.contig_stats.n50 = 800;
    manifest.entries.push_back(entry);
    entry.stage = "reads";
    entry.seq = 1;
    manifest.entries.push_back(entry);
    cases.push_back({"ckpt_manifest", ckpt::encode_manifest(manifest),
                     [](const Bytes& b) {
                       return guard([&]() -> Fingerprint {
                         auto m = ckpt::decode_manifest(b);
                         if (!m) return std::nullopt;
                         return ckpt::encode_manifest(*m);
                       });
                     }});
  }

  // ---- pgas: distributed-hash-map batch ----
  {
    struct Op {
      std::uint64_t key;
      std::uint64_t value;
    };
    const std::vector<Op> ops = {{0x1111, 0x2222}, {0x3333, 0x4444}};
    cases.push_back(
        {"dhm_batch", pgas::map_wire::encode_batch(ops), [](const Bytes& b) {
           return guard([&] {
             const auto ops2 =
                 pgas::map_wire::decode_batch<Op>(b.data(), b.size());
             return Fingerprint{pgas::map_wire::encode_batch(ops2)};
           });
         }});
  }

  // ---- pgas: lookup reply batch ----
  {
    std::vector<pgas::map_wire::LookupReply<std::uint64_t, std::uint32_t>>
        replies(2);
    replies[0] = {101, true, 0xAAAABBBBCCCCDDDDULL, 7};
    replies[1] = {102, false, 0x1234123412341234ULL, 0};
    cases.push_back({"dhm_lookup_reply",
                     pgas::map_wire::encode_lookup_replies(replies),
                     [](const Bytes& b) {
                       return guard([&] {
                         const auto replies2 = pgas::map_wire::
                             decode_lookup_replies<std::uint64_t,
                                                   std::uint32_t>(b.data(),
                                                                  b.size());
                         return Fingerprint{
                             pgas::map_wire::encode_lookup_replies(replies2)};
                       });
                     }});
  }

  // ---- pgas: registered-RMW request ----
  {
    const std::vector<std::byte> args = {std::byte{0x10}, std::byte{0x20},
                                         std::byte{0x30}, std::byte{0x41},
                                         std::byte{0x52}};
    cases.push_back({"dhm_rmw_request",
                     pgas::map_wire::encode_rmw_request<std::uint64_t>(
                         5, 0x9999AAAABBBBCCCCULL, 0xFEDCBA9876543210ULL,
                         args.data(), args.size()),
                     [](const Bytes& b) {
                       return guard([&] {
                         const auto req =
                             pgas::map_wire::decode_rmw_request<std::uint64_t>(
                                 b.data(), b.size());
                         return Fingerprint{
                             pgas::map_wire::encode_rmw_request(
                                 req.id, req.hash, req.key, req.args.data(),
                                 req.args.size())};
                       });
                     }});
  }

  // ---- pgas: registered-RMW response ----
  {
    const std::vector<std::byte> result = {std::byte{0x01}, std::byte{0x23},
                                           std::byte{0x45}, std::byte{0x67},
                                           std::byte{0x89}, std::byte{0xAB}};
    cases.push_back({"dhm_rmw_response",
                     pgas::map_wire::encode_rmw_response(true, result),
                     [](const Bytes& b) {
                       return guard([&] {
                         const auto resp = pgas::map_wire::decode_rmw_response(
                             b.data(), b.size());
                         return Fingerprint{pgas::map_wire::encode_rmw_response(
                             resp.has_value(),
                             resp.value_or(std::vector<std::byte>{}))};
                       });
                     }});
  }

  // ---- pgas: fabric frame (CRC: reject mode) ----
  {
    pgas::Frame frame;
    frame.kind = pgas::FrameKind::kData;
    frame.channel = 2;
    frame.src = 1;
    frame.dst = 3;
    frame.payload = {std::byte{0xDE}, std::byte{0xAD}, std::byte{0xBE},
                     std::byte{0xEF}, std::byte{0x05}};
    cases.push_back({"fabric_frame", pgas::encode_frame(frame),
                     [](const Bytes& b) {
                       return guard([&] {
                         const auto f = pgas::decode_frame(b.data(), b.size());
                         return Fingerprint{pgas::encode_frame(f)};
                       });
                     }});
  }

  // ---- pgas: barrier record ----
  {
    pgas::BarrierRecordMsg msg;
    msg.kind = 2;
    msg.file = "src/pipeline/pipeline.cpp";
    msg.line = 321;
    msg.func = "run_stage";
    cases.push_back({"fabric_barrier_record", pgas::encode_barrier_record(msg),
                     [](const Bytes& b) {
                       return guard([&] {
                         const auto m =
                             pgas::decode_barrier_record(b.data(), b.size());
                         return Fingerprint{pgas::encode_barrier_record(m)};
                       });
                     }});
  }

  // ---- pgas: barrier collect ----
  {
    pgas::BarrierCollectMsg msg;
    msg.slot_changed = true;
    msg.slot = {std::byte{0x11}, std::byte{0x22}, std::byte{0x33}};
    msg.has_record = true;
    pgas::BarrierRecordMsg rec;
    rec.kind = 1;
    rec.file = "a.cpp";
    rec.line = 9;
    rec.func = "f";
    msg.record = pgas::encode_barrier_record(rec);
    cases.push_back({"fabric_barrier_collect",
                     pgas::encode_barrier_collect(msg), [](const Bytes& b) {
                       return guard([&] {
                         const auto m =
                             pgas::decode_barrier_collect(b.data(), b.size());
                         return Fingerprint{pgas::encode_barrier_collect(m)};
                       });
                     }});
  }

  // ---- pgas: barrier release (nranks is team state, bound here to 3) ----
  {
    pgas::ReleaseMsg msg;
    msg.slots.emplace_back(0, Bytes{std::byte{0x10}, std::byte{0x11}});
    msg.slots.emplace_back(2, Bytes{std::byte{0x20}});
    msg.records_all = true;
    for (std::uint32_t rank = 0; rank < 3; ++rank) {
      pgas::BarrierRecordMsg rec;
      rec.kind = 2;
      rec.file = "b.cpp";
      rec.line = 10 + rank;
      rec.func = "g";
      msg.records.push_back(pgas::encode_barrier_record(rec));
    }
    cases.push_back({"fabric_release", pgas::encode_release(msg),
                     [](const Bytes& b) {
                       return guard([&] {
                         const auto m =
                             pgas::decode_release(b.data(), b.size(), 3);
                         return Fingerprint{pgas::encode_release(m)};
                       });
                     }});
  }

  // ---- pgas: roster ----
  {
    cases.push_back({"fabric_roster", pgas::encode_roster(7),
                     [](const Bytes& b) {
                       return guard([&] {
                         const auto n = pgas::decode_roster(b.data(), b.size());
                         return Fingerprint{pgas::encode_roster(n)};
                       });
                     }});
  }

  // ---- pgas: serial release ----
  {
    const std::vector<Bytes> parts = {
        {std::byte{0x01}, std::byte{0x02}},
        {},
        {std::byte{0x03}, std::byte{0x04}, std::byte{0x05}},
    };
    cases.push_back({"fabric_serial_release", pgas::encode_serial_release(parts),
                     [](const Bytes& b) {
                       return guard([&] {
                         const auto p =
                             pgas::decode_serial_release(b.data(), b.size());
                         return Fingerprint{pgas::encode_serial_release(p)};
                       });
                     }});
  }

  // ---- pgas: transport envelope (CRC: reject mode) ----
  {
    pgas::Envelope env;
    env.channel = 4;
    env.src = 0;
    env.dst = 2;
    env.seq = 77;
    env.payload = {std::byte{0x33}, std::byte{0x44}, std::byte{0x55}};
    cases.push_back({"transport_envelope", pgas::frame_envelope(env),
                     [](const Bytes& b) {
                       return guard([&] {
                         const auto e = pgas::decode_envelope(b.data(), b.size());
                         return Fingerprint{pgas::frame_envelope(e)};
                       });
                     }});
  }

  // ---- pipeline: shuffle group ----
  {
    pipeline::ShuffleGroup group;
    group.lib = 1;
    group.reads = {sample_read(0), sample_read(1)};
    group.alignments = {sample_alignment(0), sample_alignment(1)};
    cases.push_back({"shuffle_group", pipeline::encode_shuffle_group(group),
                     [](const Bytes& b) {
                       return guard([&] {
                         const auto g =
                             pipeline::decode_shuffle_group(b.data(), b.size());
                         return Fingerprint{pipeline::encode_shuffle_group(g)};
                       });
                     }});
  }

  // ---- server: cache meta (CRC: reject mode) ----
  {
    server::CacheMeta meta;
    meta.key = 0xC0FFEE1234567890ULL;
    meta.distinct_kmers = 100000;
    meta.singleton_fraction = 0.375;
    meta.heavy_hitters = 12;
    meta.shards = {{2048, 0xAABBCCDD}, {4096, 0x11223344}};
    cases.push_back({"cache_meta", server::encode_cache_meta(meta),
                     [](const Bytes& b) {
                       return guard([&]() -> Fingerprint {
                         auto m = server::decode_cache_meta(b);
                         if (!m) return std::nullopt;
                         return server::encode_cache_meta(*m);
                       });
                     }});
  }

  // ---- server: journal event payload (CRC delegated to the record
  // frame: detect mode — the sweep demands reject-or-changed-fingerprint
  // on the bare payload; the frame-level CRC sweeps live in
  // test_journal.cpp and reject every corruption outright) ----
  {
    server::JournalEvent event;
    event.type = server::JournalEventType::kSubmit;
    event.job_id = 42;
    event.attempt = 1;
    event.final_state = server::JobState::kDone;
    event.scaffolds = 9;
    event.scaffold_bases = 9000;
    event.cache_hit = true;
    event.error = "attempt 0: rank killed";
    event.spec.id = 42;
    event.spec.tenant = "alice";
    event.spec.priority = 2;
    event.spec.output_path = "/out/a.fasta";
    event.spec.k = 25;
    event.spec.min_count = 3;
    event.spec.rounds = 2;
    event.spec.diploid = true;
    event.spec.use_cache = true;
    event.spec.kill_spec = "1@contigs";
    event.spec.chaos_spec = "drop=0.02";
    event.spec.chaos_seed = 77;
    event.spec.estimated_bytes = 1 << 20;
    event.spec.max_attempts = 3;
    event.spec.deadline_ms = 60000;
    event.spec.submit_wall_ms = 1754700000000ull;
    seq::ReadLibrary lib;
    lib.name = "lib0";
    lib.fastq_path = "/data/r.fastq";
    lib.mean_insert = 395.0;
    lib.for_contigging = true;
    event.spec.libraries.push_back(lib);
    cases.push_back({"journal_event", server::encode_journal_event(event),
                     [](const Bytes& b) {
                       return guard([&]() -> Fingerprint {
                         auto e = server::decode_journal_event(b);
                         if (!e) return std::nullopt;
                         return server::encode_journal_event(*e);
                       });
                     }});
  }

  // ---- server: framed control line (CRC: reject mode) ----
  {
    // The sweep unit is the line as the reader sees it: without the
    // trailing '\n' (the line splitter consumed it).
    std::string framed = server::frame_line("SUBMIT job 7 reads=/data/r.fq");
    framed.pop_back();
    cases.push_back({"server_line", to_bytes(framed), [](const Bytes& b) {
                       return guard([&]() -> Fingerprint {
                         auto text = server::unframe_line(to_string(b));
                         if (!text) return std::nullopt;
                         std::string re = server::frame_line(*text);
                         re.pop_back();
                         return to_bytes(re);
                       });
                     }});
  }

  return cases;
}

}  // namespace hipmer::testing
