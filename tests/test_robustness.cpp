// Cross-module edge cases and robustness tests.

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "align/contig_store.hpp"
#include "dbg/contig_generator.hpp"
#include "dbg/contig_wire.hpp"
#include "kcount/kmer_analysis.hpp"
#include "pipeline/pipeline.hpp"
#include "scaffold/ordering.hpp"
#include "seq/dna.hpp"
#include "sim/datasets.hpp"
#include "sim/read_sim.hpp"

namespace hipmer {
namespace {

// ---- contig wire serialization preserves everything ----

TEST(ContigWire, RoundTripWithJunctions) {
  std::mt19937_64 rng(3141);
  std::vector<dbg::Contig> contigs;
  for (int i = 0; i < 20; ++i) {
    dbg::Contig c;
    c.id = static_cast<std::uint64_t>(i * 7);
    c.seq = sim::random_dna(40 + rng() % 500, rng);
    c.avg_depth = static_cast<double>(i) * 1.5f;
    c.left.code = "FNXO"[i % 4];
    c.right.code = "NXFO"[i % 4];
    c.left.has_junction = (i % 3 == 0);
    c.right.has_junction = (i % 2 == 0);
    if (c.left.has_junction)
      c.left.junction = seq::KmerT::from_string(sim::random_dna(21, rng));
    if (c.right.has_junction)
      c.right.junction = seq::KmerT::from_string(sim::random_dna(21, rng));
    contigs.push_back(std::move(c));
  }
  std::vector<std::byte> buf;
  for (const auto& c : contigs) dbg::serialize_contig(buf, c);
  const auto back = dbg::deserialize_contigs(buf);
  ASSERT_EQ(back.size(), contigs.size());
  for (std::size_t i = 0; i < contigs.size(); ++i) {
    EXPECT_EQ(back[i].id, contigs[i].id);
    EXPECT_EQ(back[i].seq, contigs[i].seq);
    EXPECT_FLOAT_EQ(static_cast<float>(back[i].avg_depth),
                    static_cast<float>(contigs[i].avg_depth));
    EXPECT_EQ(back[i].left.code, contigs[i].left.code);
    EXPECT_EQ(back[i].right.code, contigs[i].right.code);
    EXPECT_EQ(back[i].left.has_junction, contigs[i].left.has_junction);
    if (contigs[i].left.has_junction) {
      EXPECT_EQ(back[i].left.junction, contigs[i].left.junction);
    }
    if (contigs[i].right.has_junction) {
      EXPECT_EQ(back[i].right.junction, contigs[i].right.junction);
    }
  }
}

// ---- contig generation options ----

TEST(ContigGenOptions, MinContigLenFilters) {
  // Fragmented genome: with a length filter, only long contigs survive,
  // and the k-mer table still marks everything complete (no hangs).
  sim::GenomeConfig gc;
  gc.length = 30000;
  gc.repeat_fraction = 0.3;
  gc.repeat_families = 4;
  gc.repeat_unit_length = 150;
  gc.seed = 2718;
  const auto genome = sim::simulate_genome(gc);
  sim::LibraryConfig lc;
  lc.read_length = 100;
  lc.coverage = 12.0;
  lc.error_rate = 0.0;
  lc.seed = 2719;
  const auto reads = sim::simulate_library(genome, lc);

  pgas::ThreadTeam team(pgas::Topology{4, 2});
  kcount::KmerAnalysisConfig kc;
  kc.k = 21;
  kcount::KmerAnalysis ka(team, kc);
  team.run([&](pgas::Rank& rank) {
    std::vector<seq::Read> mine;
    for (std::size_t i = static_cast<std::size_t>(rank.id()); i < reads.size();
         i += 4)
      mine.push_back(reads[i]);
    ka.run(rank, mine);
  });
  std::size_t ufx = 0;
  for (int r = 0; r < 4; ++r) ufx += ka.ufx(r).size();

  dbg::ContigGenConfig cc;
  cc.k = 21;
  cc.min_contig_len = 100;
  dbg::ContigGenerator gen(team, cc, ufx);
  team.run([&](pgas::Rank& rank) {
    gen.build_graph(rank, ka.ufx(rank.id()));
    gen.traverse(rank);
  });
  const auto contigs = gen.all_contigs();
  ASSERT_GT(contigs.size(), 0u);
  for (const auto& c : contigs) EXPECT_GE(c.seq.size(), 100u);
  // Lookup stats were recorded.
  EXPECT_GT(gen.total_lookup_stats().total(), 0u);
}

// ---- ordering flip invariants ----

TEST(OrderingFlip, DoubleTraversalIsStable) {
  // A 4-chain with mixed orientations; repeated order_and_orient calls on
  // the same input must give identical output (pure function).
  using namespace scaffold;
  std::vector<Tie> ties = {
      Tie{ContigEnd{0, 1}, ContigEnd{1, 1}, 5, 10.0},   // 1 enters reversed
      Tie{ContigEnd{1, 0}, ContigEnd{2, 0}, 5, -8.0},   // overlap link
      Tie{ContigEnd{2, 1}, ContigEnd{3, 0}, 5, 42.0},
  };
  std::vector<ContigLen> lens = {{0, 900}, {1, 800}, {2, 700}, {3, 600}};
  pgas::ThreadTeam team(pgas::Topology{1, 1});
  std::vector<ScaffoldRecord> first;
  std::vector<ScaffoldRecord> second;
  team.run([&](pgas::Rank& rank) {
    first = order_and_orient(rank, ties, lens);
    second = order_and_orient(rank, ties, lens);
  });
  ASSERT_EQ(first.size(), 1u);
  ASSERT_EQ(first.size(), second.size());
  ASSERT_EQ(first[0].placements.size(), 4u);
  for (std::size_t i = 0; i < first[0].placements.size(); ++i) {
    EXPECT_EQ(first[0].placements[i].contig, second[0].placements[i].contig);
    EXPECT_EQ(first[0].placements[i].reversed, second[0].placements[i].reversed);
    EXPECT_DOUBLE_EQ(first[0].placements[i].gap_after,
                     second[0].placements[i].gap_after);
  }
  // Chain covers every contig exactly once with consistent orientations:
  // contig 1 must be reversed (entered through its end 1).
  std::vector<std::uint32_t> ids;
  for (const auto& p : first[0].placements) ids.push_back(p.contig);
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids, (std::vector<std::uint32_t>{0, 1, 2, 3}));
}

// ---- multi-round scaffolding ----

TEST(PipelineRounds, SecondRoundDoesNotRegress) {
  auto ds = sim::make_wheat_like(60'000, 1618);
  pipeline::PipelineConfig one;
  one.k = 25;
  one.merge_bubbles = false;
  one.kmer.min_count = 3;
  one.scaffolding_rounds = 1;
  one.sync_k();
  pipeline::Pipeline pipe1(pgas::Topology{4, 2}, one);
  const auto r1 = pipe1.run(ds.reads, ds.libraries);

  auto two = one;
  two.scaffolding_rounds = 2;
  pipeline::Pipeline pipe2(pgas::Topology{4, 2}, two);
  const auto r2 = pipe2.run(ds.reads, ds.libraries);

  EXPECT_GE(r2.scaffold_stats.n50, r1.scaffold_stats.n50)
      << "an extra scaffolding round must not fragment the assembly";
  EXPECT_LE(r2.scaffolds.size(), r1.scaffolds.size());
}

// ---- heavy hitters flow through the full pipeline ----

TEST(PipelineHeavyHitters, WheatEndToEndDetectsAndSurvives) {
  auto ds = sim::make_wheat_like(80'000, 4242);
  pipeline::PipelineConfig cfg;
  cfg.k = 21;
  cfg.merge_bubbles = false;
  cfg.kmer.min_count = 3;
  cfg.kmer.mg_capacity = 8192;
  cfg.sync_k();
  pipeline::Pipeline pipe(pgas::Topology{4, 2}, cfg);
  const auto result = pipe.run(ds.reads, ds.libraries);
  EXPECT_GT(result.heavy_hitters, 0u);
  // Repeats collapse: expected assembled length ~= unique fraction plus one
  // copy of each repeat family (~53k for this 80k genome at 43% repeat).
  EXPECT_GT(result.scaffold_stats.total_length, 45'000u);
  // And no runaway duplication from the hyper repeats.
  EXPECT_LT(result.scaffold_stats.total_length, 100'000u);
}

// ---- reverse-complement read handling end to end ----

TEST(Robustness, AllReverseComplementedInputGivesSameAssembly) {
  // Flipping every read to its reverse complement must produce the same
  // canonical assembly (the pipeline is strand-oblivious).
  sim::GenomeConfig gc;
  gc.length = 25'000;
  gc.seed = 999;
  const auto genome = sim::simulate_genome(gc);
  sim::LibraryConfig lc;
  lc.read_length = 90;
  lc.coverage = 14.0;
  lc.error_rate = 0.0;
  lc.seed = 998;
  auto reads = sim::simulate_library(genome, lc);
  auto flipped = reads;
  for (auto& r : flipped) {
    r.seq = seq::revcomp(r.seq);
    std::reverse(r.quals.begin(), r.quals.end());
  }

  auto run = [&](const std::vector<seq::Read>& input) {
    pgas::ThreadTeam team(pgas::Topology{3, 2});
    kcount::KmerAnalysisConfig kc;
    kc.k = 21;
    kcount::KmerAnalysis ka(team, kc);
    team.run([&](pgas::Rank& rank) {
      std::vector<seq::Read> mine;
      for (std::size_t i = static_cast<std::size_t>(rank.id());
           i < input.size(); i += 3)
        mine.push_back(input[i]);
      ka.run(rank, mine);
    });
    std::size_t ufx = 0;
    for (int r = 0; r < 3; ++r) ufx += ka.ufx(r).size();
    dbg::ContigGenConfig cc;
    cc.k = 21;
    dbg::ContigGenerator gen(team, cc, ufx);
    team.run([&](pgas::Rank& rank) {
      gen.build_graph(rank, ka.ufx(rank.id()));
      gen.traverse(rank);
    });
    std::vector<std::string> seqs;
    for (const auto& c : gen.all_contigs()) seqs.push_back(c.seq);
    std::sort(seqs.begin(), seqs.end());
    return seqs;
  };
  EXPECT_EQ(run(reads), run(flipped));
}

// ---- contig store under skewed ownership ----

TEST(Robustness, ContigStoreHandlesEmptyRanks) {
  pgas::ThreadTeam team(pgas::Topology{8, 4});
  align::ContigStore store(team);
  // Only 2 contigs over 8 ranks: most shards empty.
  std::mt19937_64 rng(555);
  dbg::Contig a;
  a.id = 0;
  a.seq = sim::random_dna(100, rng);
  dbg::Contig b;
  b.id = 5;
  b.seq = sim::random_dna(100, rng);
  team.run([&](pgas::Rank& rank) {
    store.build(rank, rank.id() == 3 ? std::vector<dbg::Contig>{a, b}
                                     : std::vector<dbg::Contig>{});
    rank.barrier();
    EXPECT_EQ(store.fetch_all(rank, 0), a.seq);
    EXPECT_EQ(store.fetch_all(rank, 5), b.seq);
    EXPECT_TRUE(store.fetch_all(rank, 7).empty());  // absent contig
    EXPECT_EQ(store.meta(rank, 3).length, 0u);      // absent meta
  });
  EXPECT_EQ(store.num_contigs(), 2u);
}

}  // namespace
}  // namespace hipmer
