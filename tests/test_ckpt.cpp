// Checkpoint/restart subsystem: manifest + shard integrity, artifact
// round-trips, resharding, and end-to-end kill-and-resume through the
// pipeline with fault injection.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "ckpt/artifacts.hpp"
#include "ckpt/checkpoint.hpp"
#include "ckpt/manifest.hpp"
#include "ckpt/snapshot_store.hpp"
#include "pgas/fault.hpp"
#include "pipeline/pipeline.hpp"
#include "seq/dna.hpp"
#include "seq/read_name.hpp"
#include "sim/datasets.hpp"
#include "util/hash.hpp"

namespace hipmer {
namespace {

namespace fs = std::filesystem;

fs::path fresh_dir(const std::string& tag) {
  const auto dir = fs::temp_directory_path() /
                   ("hipmer_" + tag + "_" +
                    std::to_string(std::random_device{}()));
  fs::create_directories(dir);
  return dir;
}

std::vector<std::byte> slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::vector<char> raw((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
  std::vector<std::byte> bytes(raw.size());
  std::transform(raw.begin(), raw.end(), bytes.begin(),
                 [](char c) { return static_cast<std::byte>(c); });
  return bytes;
}

void spit(const fs::path& path, const std::vector<std::byte>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

// ---- CRC-32C ----

TEST(Crc32, KnownAnswerAndIncremental) {
  const char* check = "123456789";
  EXPECT_EQ(util::crc32c(check, 9), 0xE3069283u);
  util::Crc32 crc;
  crc.update(check, 4);
  crc.update(check + 4, 5);
  EXPECT_EQ(crc.value(), 0xE3069283u);
  EXPECT_EQ(util::crc32c(nullptr, 0), 0u);
}

// ---- Manifest ----

ckpt::Manifest sample_manifest() {
  ckpt::Manifest m;
  ckpt::StageEntry reads;
  reads.stage = ckpt::kStageReads;
  reads.seq = 1;
  reads.fingerprint = 0xfeedfacecafef00dull;
  reads.shard_count = 3;
  reads.shard_bytes = {100, 0, 250};
  reads.shard_crcs = {0xdeadbeef, 0, 0x12345678};
  reads.aux.distinct_kmers = 42;
  reads.aux.singleton_fraction = 0.125;
  m.entries.push_back(reads);
  ckpt::StageEntry scaf;
  scaf.stage = ckpt::stage_scaffolds(1);
  scaf.seq = 7;
  scaf.fingerprint = 0xfeedfacecafef00dull;
  scaf.shard_count = 1;
  scaf.shard_bytes = {9999};
  scaf.shard_crcs = {0xcafebabe};
  scaf.aux.num_contigs = 17;
  scaf.aux.contig_stats.n50 = 1234;
  m.entries.push_back(scaf);
  return m;
}

TEST(Manifest, RoundTrip) {
  const auto m = sample_manifest();
  const auto bytes = ckpt::encode_manifest(m);
  const auto back = ckpt::decode_manifest(bytes);
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->entries.size(), 2u);
  EXPECT_EQ(back->entries[0].stage, ckpt::kStageReads);
  EXPECT_EQ(back->entries[0].shard_bytes, m.entries[0].shard_bytes);
  EXPECT_EQ(back->entries[0].shard_crcs, m.entries[0].shard_crcs);
  EXPECT_EQ(back->entries[0].aux.distinct_kmers, 42u);
  EXPECT_DOUBLE_EQ(back->entries[0].aux.singleton_fraction, 0.125);
  EXPECT_EQ(back->entries[1].stage, "scaffolds.1");
  EXPECT_EQ(back->entries[1].seq, 7u);
  EXPECT_EQ(back->entries[1].aux.contig_stats.n50, 1234u);
  EXPECT_EQ(back->next_seq(), 8u);
  EXPECT_EQ(back->latest(ckpt::kStageReads)->seq, 1u);
  EXPECT_EQ(back->latest("nope"), nullptr);
}

TEST(Manifest, EveryByteFlipIsDetected) {
  const auto bytes = ckpt::encode_manifest(sample_manifest());
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    auto corrupt = bytes;
    corrupt[i] ^= std::byte{0x01};
    EXPECT_FALSE(ckpt::decode_manifest(corrupt).has_value()) << "offset " << i;
  }
}

TEST(Manifest, EveryTruncationIsDetected) {
  const auto bytes = ckpt::encode_manifest(sample_manifest());
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    const std::vector<std::byte> prefix(bytes.begin(),
                                        bytes.begin() + static_cast<long>(len));
    EXPECT_FALSE(ckpt::decode_manifest(prefix).has_value()) << "len " << len;
  }
}

TEST(Manifest, StageProgressOrdering) {
  using namespace ckpt;
  EXPECT_EQ(stage_progress(kStageReads), kProgressReads);
  EXPECT_EQ(stage_progress(kStageUfx), kProgressUfx);
  EXPECT_EQ(stage_progress(kStageContigs), kProgressContigs);
  EXPECT_EQ(stage_progress(stage_alignments(0)), progress_alignments(0));
  EXPECT_EQ(stage_progress(stage_scaffolds(2)), progress_scaffolds(2));
  EXPECT_LT(kProgressContigs, progress_alignments(0));
  EXPECT_LT(progress_alignments(0), progress_scaffolds(0));
  EXPECT_LT(progress_scaffolds(0), progress_alignments(1));
  EXPECT_EQ(stage_progress("bogus"), -1);
  EXPECT_EQ(stage_progress("alignments.x"), -1);
  EXPECT_EQ(progress_round(progress_alignments(3)), 3);
  EXPECT_EQ(progress_round(progress_scaffolds(3)), 3);
}

// ---- SnapshotStore ----

TEST(SnapshotStore, ShardFlipAndTruncationDetected) {
  const auto dir = fresh_dir("store");
  ckpt::SnapshotStore store(dir.string());

  ckpt::StageEntry entry;
  entry.stage = ckpt::kStageUfx;
  entry.seq = 3;
  entry.shard_count = 1;
  std::vector<std::byte> payload(57);
  for (std::size_t i = 0; i < payload.size(); ++i)
    payload[i] = static_cast<std::byte>(i * 11 + 1);
  entry.shard_bytes = {payload.size()};
  entry.shard_crcs = {util::crc32c(payload.data(), payload.size())};

  ASSERT_TRUE(store.prepare_entry(entry));
  ASSERT_TRUE(store.write_shard(entry, 0, payload));
  const auto back = store.read_shard(entry, 0);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, payload);
  // No stray temp files after the atomic rename.
  for (const auto& f : fs::recursive_directory_iterator(dir))
    EXPECT_NE(f.path().extension(), ".tmp") << f.path();

  const auto shard_file = store.shard_path(entry, 0);
  const auto original = slurp(shard_file);
  ASSERT_EQ(original.size(), payload.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    auto corrupt = original;
    corrupt[i] ^= std::byte{0x80};
    spit(shard_file, corrupt);
    EXPECT_FALSE(store.read_shard(entry, 0).has_value()) << "flip at " << i;
  }
  for (std::size_t len = 0; len < original.size(); ++len) {
    const std::vector<std::byte> prefix(
        original.begin(), original.begin() + static_cast<long>(len));
    spit(shard_file, prefix);
    EXPECT_FALSE(store.read_shard(entry, 0).has_value()) << "trunc " << len;
  }
  spit(shard_file, original);
  EXPECT_TRUE(store.read_shard(entry, 0).has_value());
  fs::remove_all(dir);
}

TEST(SnapshotStore, ManifestPersistsAtomically) {
  const auto dir = fresh_dir("mstore");
  ckpt::SnapshotStore store(dir.string());
  EXPECT_FALSE(store.load_manifest().has_value());
  ASSERT_TRUE(store.write_manifest(sample_manifest()));
  const auto back = store.load_manifest();
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->entries.size(), 2u);
  EXPECT_FALSE(fs::exists(dir / "manifest.bin.tmp"));
  fs::remove_all(dir);
}

// ---- Artifact payloads ----

template <typename Decoder>
void expect_truncations_rejected(const std::vector<std::byte>& bytes,
                                 Decoder decode) {
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    const std::vector<std::byte> prefix(bytes.begin(),
                                        bytes.begin() + static_cast<long>(len));
    EXPECT_FALSE(decode(prefix).has_value()) << "len " << len;
  }
  EXPECT_TRUE(decode(bytes).has_value());
}

TEST(Artifacts, ReadsRoundTripAndTruncation) {
  std::vector<std::vector<seq::Read>> libs(2);
  libs[0].push_back(seq::Read{"lib0:0/0", "ACGT", "IIII"});
  libs[0].push_back(seq::Read{"lib0:0/1", "TTTT", "IIII"});
  libs[1].push_back(seq::Read{"weird name \t\n", "N", ""});
  const auto bytes = ckpt::encode_reads_shard(libs);
  const auto back = ckpt::decode_reads_shard(bytes);
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->size(), 2u);
  EXPECT_EQ((*back)[0][1].seq, "TTTT");
  EXPECT_EQ((*back)[1][0].name, "weird name \t\n");
  expect_truncations_rejected(bytes, ckpt::decode_reads_shard);
  EXPECT_FALSE(ckpt::decode_ufx_shard(bytes).has_value());  // wrong magic
}

TEST(Artifacts, ReshardReadsPreservesPairsAndIsIdentityForSameTeam) {
  // 4 writer shards, paired reads dealt (i/2) % 4 like the pipeline does.
  const int writers = 4;
  std::vector<std::vector<std::vector<seq::Read>>> shards(
      writers, std::vector<std::vector<seq::Read>>(1));
  std::vector<std::string> all_names;
  for (int pair = 0; pair < 23; ++pair) {
    for (int mate = 0; mate < 2; ++mate) {
      seq::Read r;
      r.name = "lib:" + std::to_string(pair) + "/" + std::to_string(mate);
      r.seq = std::string(8, "ACGT"[pair % 4]);
      all_names.push_back(r.name);
      shards[pair % writers][0].push_back(std::move(r));
    }
  }
  // Same team size: identity (compare via the canonical encoding).
  const auto same = ckpt::reshard_reads(shards, writers);
  ASSERT_EQ(same.size(), shards.size());
  for (int s = 0; s < writers; ++s)
    EXPECT_EQ(ckpt::encode_reads_shard(same[static_cast<std::size_t>(s)]),
              ckpt::encode_reads_shard(shards[static_cast<std::size_t>(s)]));

  const auto resharded = ckpt::reshard_reads(shards, 3);
  ASSERT_EQ(resharded.size(), 3u);
  std::vector<std::string> seen;
  for (std::size_t rank = 0; rank < resharded.size(); ++rank) {
    ASSERT_EQ(resharded[rank].size(), 1u);
    const auto& reads = resharded[rank][0];
    ASSERT_EQ(reads.size() % 2, 0u);  // pairs stay together
    for (std::size_t i = 0; i + 1 < reads.size(); i += 2) {
      // Mates remain adjacent and ordered.
      std::uint64_t pair0 = 0, pair1 = 0;
      int mate0 = 0, mate1 = 0;
      ASSERT_TRUE(seq::parse_read_name(reads[i].name, pair0, mate0));
      ASSERT_TRUE(seq::parse_read_name(reads[i + 1].name, pair1, mate1));
      EXPECT_EQ(pair0, pair1);
      EXPECT_EQ(mate0, 0);
      EXPECT_EQ(mate1, 1);
      // Named pairs land on pair % p, colocated with resharded alignments.
      EXPECT_EQ(pair0 % 3, rank);
    }
    for (const auto& r : reads) seen.push_back(r.name);
  }
  std::sort(seen.begin(), seen.end());
  std::sort(all_names.begin(), all_names.end());
  EXPECT_EQ(seen, all_names);
}

TEST(Artifacts, UfxRoundTripAndTruncation) {
  std::vector<kcount::UfxRecord> records;
  for (int i = 0; i < 5; ++i) {
    kcount::KmerSummary s;
    s.depth = static_cast<std::uint32_t>(10 + i);
    s.left_ext = "ACGTF"[i];
    s.right_ext = "TGCAX"[i];
    records.emplace_back(
        seq::KmerT::from_string(std::string(21, "ACGT"[i % 4])), s);
  }
  const auto bytes = ckpt::encode_ufx_shard(records);
  const auto back = ckpt::decode_ufx_shard(bytes);
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ((*back)[i].first, records[i].first);
    EXPECT_EQ((*back)[i].second.depth, records[i].second.depth);
    EXPECT_EQ((*back)[i].second.left_ext, records[i].second.left_ext);
    EXPECT_EQ((*back)[i].second.right_ext, records[i].second.right_ext);
  }
  expect_truncations_rejected(bytes, ckpt::decode_ufx_shard);
}

TEST(Artifacts, ContigsRoundTripAndTruncation) {
  std::vector<dbg::Contig> contigs(3);
  contigs[0].id = 5;
  contigs[0].seq = "ACGTACGTACGT";
  contigs[0].avg_depth = 12.5;
  contigs[1].id = 9;
  contigs[1].seq = "TTTT";
  contigs[2].id = 1;
  contigs[2].seq = "GGGGGGG";
  std::vector<const dbg::Contig*> ptrs;
  for (const auto& c : contigs) ptrs.push_back(&c);
  const auto bytes = ckpt::encode_contigs_shard(ptrs);
  const auto back = ckpt::decode_contigs_shard(bytes);
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->size(), 3u);
  EXPECT_EQ((*back)[0].id, 5u);
  EXPECT_EQ((*back)[0].seq, "ACGTACGTACGT");
  EXPECT_DOUBLE_EQ((*back)[0].avg_depth, 12.5);
  expect_truncations_rejected(bytes, ckpt::decode_contigs_shard);
}

TEST(Artifacts, AlignmentsRoundTripReshardAndTruncation) {
  std::vector<std::vector<align::ReadAlignment>> shards(4);
  for (int i = 0; i < 17; ++i) {
    align::ReadAlignment a{};
    a.pair_id = static_cast<std::uint64_t>(i);
    a.mate = i % 2;
    a.library = 0;
    a.contig_id = static_cast<std::uint32_t>(100 + i);
    a.score = i;
    shards[(i / 2) % 4].push_back(a);
  }
  const auto bytes = ckpt::encode_alignments_shard(shards[0]);
  const auto back = ckpt::decode_alignments_shard(bytes);
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->size(), shards[0].size());
  EXPECT_EQ((*back)[0].contig_id, shards[0][0].contig_id);
  expect_truncations_rejected(bytes, ckpt::decode_alignments_shard);

  const auto same = ckpt::reshard_alignments(shards, 4);
  ASSERT_EQ(same.size(), shards.size());
  for (std::size_t s = 0; s < shards.size(); ++s)
    EXPECT_EQ(ckpt::encode_alignments_shard(same[s]),
              ckpt::encode_alignments_shard(shards[s]));
  const auto resharded = ckpt::reshard_alignments(shards, 3);
  ASSERT_EQ(resharded.size(), 3u);
  std::size_t total = 0;
  for (std::size_t r = 0; r < resharded.size(); ++r) {
    for (const auto& a : resharded[r])
      EXPECT_EQ(a.pair_id % 3, r);  // pair_id % p owner, same as reads
    total += resharded[r].size();
  }
  EXPECT_EQ(total, 17u);
}

TEST(Artifacts, ScaffoldShardsRoundTripMergeAndTruncation) {
  std::vector<io::FastaRecord> records;
  for (int i = 0; i < 7; ++i)
    records.push_back(io::FastaRecord{"scaffold_" + std::to_string(i),
                                      std::string(10 + i, 'A')});
  ckpt::ScaffoldExtras extras;
  extras.closure_stats.gaps_total = 11;
  extras.inserts.push_back(scaffold::InsertSizeEstimate{210.0, 15.0, 99});

  std::vector<ckpt::ScaffoldShard> shards;
  std::vector<std::byte> shard0_bytes;
  for (int s = 0; s < 3; ++s) {
    const auto bytes = ckpt::encode_scaffolds_shard(
        records, s, 3, s == 0 ? &extras : nullptr);
    if (s == 0) shard0_bytes = bytes;
    auto decoded = ckpt::decode_scaffolds_shard(bytes);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->extras.has_value(), s == 0);
    shards.push_back(std::move(*decoded));
  }
  EXPECT_EQ(shards[0].extras->closure_stats.gaps_total, 11u);
  ASSERT_EQ(shards[0].extras->inserts.size(), 1u);
  EXPECT_DOUBLE_EQ(shards[0].extras->inserts[0].mean, 210.0);
  const auto merged = ckpt::merge_scaffold_shards(std::move(shards));
  ASSERT_EQ(merged.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(merged[i].name, records[i].name);
    EXPECT_EQ(merged[i].seq, records[i].seq);
  }
  expect_truncations_rejected(shard0_bytes, ckpt::decode_scaffolds_shard);
}

// ---- End-to-end kill-and-resume ----

pipeline::PipelineConfig ckpt_config(const fs::path& dir, int rounds = 1) {
  pipeline::PipelineConfig cfg;
  cfg.k = 25;
  cfg.kmer.min_count = 3;
  cfg.scaffolding_rounds = rounds;
  cfg.checkpoint.dir = dir.string();
  cfg.sync_k();
  return cfg;
}

void expect_same_scaffolds(const std::vector<io::FastaRecord>& expected,
                           const std::vector<io::FastaRecord>& actual,
                           const std::string& label) {
  ASSERT_EQ(expected.size(), actual.size()) << label;
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i].name, actual[i].name) << label << " record " << i;
    EXPECT_EQ(expected[i].seq, actual[i].seq) << label << " record " << i;
  }
}

std::vector<std::string> canon(const std::vector<io::FastaRecord>& records) {
  std::vector<std::string> seqs;
  for (const auto& r : records)
    seqs.push_back(std::min(r.seq, seq::revcomp(r.seq)));
  std::sort(seqs.begin(), seqs.end());
  return seqs;
}

TEST(Checkpoint, KillAndResumeEveryStageByteIdentical) {
  auto ds = sim::make_human_like(20000, 4242, 15.0);

  // Uninterrupted, checkpoint-free reference run.
  pipeline::PipelineConfig plain = ckpt_config("");
  plain.checkpoint.dir.clear();
  pipeline::Pipeline reference(pgas::Topology{4, 2}, plain);
  const auto expected = reference.run(ds.reads, ds.libraries);
  ASSERT_FALSE(expected.scaffolds.empty());

  struct Kill {
    const char* stage;
    int occurrence;
    int step;
    const char* what;
  };
  const Kill kills[] = {
      // "checkpoint" occurrence 0 is the reads snapshot: nothing committed
      // yet, resume must recompute from scratch.
      {pipeline::kStageCheckpoint, 0, 0, "during reads snapshot"},
      {pipeline::kStageKmerAnalysis, 0, 0, "kmer analysis boundary"},
      {pipeline::kStageKmerAnalysis, 0, 2, "mid kmer analysis"},
      {pipeline::kStageContigGen, 0, 0, "contig generation boundary"},
      {pipeline::kStageAligner, 0, 0, "aligner boundary"},
      // rest_scaffolding occurrences: 0 = store+depths+bubbles, 1 = merged
      // store build, 2 = links/ordering, 3 = sequence build.
      {pipeline::kStageScaffoldRest, 2, 0, "links/ordering boundary"},
      {pipeline::kStageGapClosing, 0, 0, "gap closing boundary"},
      // "checkpoint" occurrence 4 is the scaffolds.0 snapshot: commit must
      // not happen, resume recomputes the round from alignments.0.
      {pipeline::kStageCheckpoint, 4, 0, "during scaffolds snapshot"},
  };

  for (const auto& kill : kills) {
    SCOPED_TRACE(kill.what);
    const auto dir = fresh_dir("kill");
    const auto cfg = ckpt_config(dir);
    {
      pipeline::Pipeline victim(pgas::Topology{4, 2}, cfg);
      victim.team().faults().set_plan(
          pgas::FaultPlan{2, kill.stage, kill.occurrence, kill.step});
      EXPECT_THROW((void)victim.run(ds.reads, ds.libraries), pgas::RankKilled);
      EXPECT_TRUE(victim.team().faults().fired());
    }
    pipeline::Pipeline recovery(pgas::Topology{4, 2}, cfg);
    const auto resumed = recovery.resume(ds.reads, ds.libraries);
    expect_same_scaffolds(expected.scaffolds, resumed.scaffolds, kill.what);
    EXPECT_EQ(resumed.distinct_kmers, expected.distinct_kmers) << kill.what;
    EXPECT_EQ(resumed.num_contigs, expected.num_contigs) << kill.what;
    EXPECT_EQ(resumed.contig_stats.n50, expected.contig_stats.n50) << kill.what;
    fs::remove_all(dir);
  }
}

TEST(Checkpoint, ResumeOnDifferentTeamSize) {
  auto ds = sim::make_human_like(20000, 4242, 15.0);
  pipeline::PipelineConfig plain = ckpt_config("");
  plain.checkpoint.dir.clear();
  pipeline::Pipeline reference(pgas::Topology{4, 2}, plain);
  const auto expected = reference.run(ds.reads, ds.libraries);

  const auto dir = fresh_dir("xteam");
  const auto cfg = ckpt_config(dir);
  {
    pipeline::Pipeline victim(pgas::Topology{4, 2}, cfg);
    victim.team().faults().set_plan(
        pgas::FaultPlan{1, pipeline::kStageAligner, 0, 0});
    EXPECT_THROW((void)victim.run(ds.reads, ds.libraries), pgas::RankKilled);
  }
  // Resume on 3 ranks: snapshots written by 4 ranks are re-sharded.
  pipeline::Pipeline recovery(pgas::Topology{3, 2}, cfg);
  const auto resumed = recovery.resume(ds.reads, ds.libraries);
  EXPECT_EQ(canon(expected.scaffolds), canon(resumed.scaffolds));
  EXPECT_EQ(resumed.num_contigs, expected.num_contigs);
  fs::remove_all(dir);
}

TEST(Checkpoint, KillInSecondRoundResumesFromFirstRoundScaffolds) {
  auto ds = sim::make_human_like(20000, 4242, 15.0);
  pipeline::PipelineConfig plain = ckpt_config("", 2);
  plain.checkpoint.dir.clear();
  pipeline::Pipeline reference(pgas::Topology{4, 2}, plain);
  const auto expected = reference.run(ds.reads, ds.libraries);

  const auto dir = fresh_dir("round2");
  const auto cfg = ckpt_config(dir, 2);
  {
    pipeline::Pipeline victim(pgas::Topology{4, 2}, cfg);
    // Second execution of the aligner = round 1.
    victim.team().faults().set_plan(
        pgas::FaultPlan{0, pipeline::kStageAligner, 1, 0});
    EXPECT_THROW((void)victim.run(ds.reads, ds.libraries), pgas::RankKilled);
  }
  pipeline::Pipeline recovery(pgas::Topology{4, 2}, cfg);
  const auto resumed = recovery.resume(ds.reads, ds.libraries);
  expect_same_scaffolds(expected.scaffolds, resumed.scaffolds, "round 1 kill");
  // The resumed run must not redo round 0's aligner: exactly one aligner
  // stage (round 1's) in its report.
  int aligner_stages = 0;
  for (const auto& s : resumed.stages)
    aligner_stages += s.name == pipeline::kStageAligner;
  EXPECT_EQ(aligner_stages, 1);
  fs::remove_all(dir);
}

TEST(Checkpoint, KillDuringRestoreThenResumeAgain) {
  auto ds = sim::make_human_like(20000, 4242, 15.0);
  const auto dir = fresh_dir("restore");
  const auto cfg = ckpt_config(dir);
  pipeline::Pipeline writer(pgas::Topology{4, 2}, cfg);
  const auto expected = writer.run(ds.reads, ds.libraries);

  {
    pipeline::Pipeline victim(pgas::Topology{4, 2}, cfg);
    victim.team().faults().set_plan(
        pgas::FaultPlan{3, pipeline::kStageRestore, 0, 0});
    EXPECT_THROW((void)victim.resume(ds.reads, ds.libraries),
                 pgas::RankKilled);
  }
  pipeline::Pipeline recovery(pgas::Topology{4, 2}, cfg);
  const auto resumed = recovery.resume(ds.reads, ds.libraries);
  expect_same_scaffolds(expected.scaffolds, resumed.scaffolds, "post-restore");
  fs::remove_all(dir);
}

TEST(Checkpoint, CorruptShardFallsBackToEarlierStage) {
  auto ds = sim::make_human_like(20000, 4242, 15.0);
  const auto dir = fresh_dir("corrupt");
  const auto cfg = ckpt_config(dir);
  pipeline::Pipeline writer(pgas::Topology{4, 2}, cfg);
  const auto expected = writer.run(ds.reads, ds.libraries);

  // Flip one byte in a shard of the newest scaffolds snapshot.
  fs::path victim_shard;
  for (const auto& e : fs::directory_iterator(dir)) {
    if (!e.is_directory()) continue;
    if (e.path().filename().string().rfind("scaffolds.0.", 0) == 0)
      victim_shard = e.path() / "shard.1";
  }
  ASSERT_FALSE(victim_shard.empty());
  auto bytes = slurp(victim_shard);
  ASSERT_FALSE(bytes.empty());
  bytes[bytes.size() / 2] ^= std::byte{0x40};
  spit(victim_shard, bytes);

  pipeline::Pipeline recovery(pgas::Topology{4, 2}, cfg);
  const auto resumed = recovery.resume(ds.reads, ds.libraries);
  expect_same_scaffolds(expected.scaffolds, resumed.scaffolds, "corrupt shard");
  fs::remove_all(dir);
}

TEST(Checkpoint, CorruptManifestRecomputesFromScratch) {
  auto ds = sim::make_human_like(20000, 4242, 15.0);
  const auto dir = fresh_dir("badmanifest");
  const auto cfg = ckpt_config(dir);
  pipeline::Pipeline writer(pgas::Topology{4, 2}, cfg);
  const auto expected = writer.run(ds.reads, ds.libraries);

  const auto manifest_file = dir / "manifest.bin";
  auto bytes = slurp(manifest_file);
  ASSERT_FALSE(bytes.empty());
  bytes[3] ^= std::byte{0x01};
  spit(manifest_file, bytes);

  pipeline::Pipeline recovery(pgas::Topology{4, 2}, cfg);
  const auto resumed = recovery.resume(ds.reads, ds.libraries);
  expect_same_scaffolds(expected.scaffolds, resumed.scaffolds,
                        "corrupt manifest");
  // Nothing was resumable, so k-mer analysis must have run again.
  EXPECT_GT(resumed.wall_for(pipeline::kStageKmerAnalysis), 0.0);
  fs::remove_all(dir);
}

TEST(Checkpoint, FingerprintMismatchIgnoresForeignSnapshots) {
  auto ds = sim::make_human_like(20000, 4242, 15.0);
  const auto dir = fresh_dir("fprint");
  {
    pipeline::Pipeline writer(pgas::Topology{4, 2}, ckpt_config(dir));
    (void)writer.run(ds.reads, ds.libraries);
  }
  auto other = ckpt_config(dir);
  other.k = 27;
  other.sync_k();
  pipeline::Pipeline recovery(pgas::Topology{4, 2}, other);
  const auto resumed = recovery.resume(ds.reads, ds.libraries);
  // k=27 run cannot reuse k=25 snapshots: full recompute.
  EXPECT_GT(resumed.wall_for(pipeline::kStageKmerAnalysis), 0.0);
  ASSERT_FALSE(resumed.scaffolds.empty());
  fs::remove_all(dir);
}

TEST(Checkpoint, KeepLastPrunesButResumeStillWorks) {
  auto ds = sim::make_human_like(20000, 4242, 15.0);
  const auto dir = fresh_dir("prune");
  auto cfg = ckpt_config(dir);
  cfg.checkpoint.keep_last = 2;
  pipeline::Pipeline writer(pgas::Topology{4, 2}, cfg);
  const auto expected = writer.run(ds.reads, ds.libraries);

  std::size_t entry_dirs = 0;
  for (const auto& e : fs::directory_iterator(dir))
    entry_dirs += e.is_directory();
  // Five snapshots were taken; pruning keeps the newest two plus the
  // newest entry's dependency closure.
  EXPECT_LE(entry_dirs, 3u);

  pipeline::Pipeline recovery(pgas::Topology{4, 2}, cfg);
  const auto resumed = recovery.resume(ds.reads, ds.libraries);
  expect_same_scaffolds(expected.scaffolds, resumed.scaffolds, "pruned");
  fs::remove_all(dir);
}

TEST(Checkpoint, KeepLastIsPerFingerprintGroup) {
  // Two configs with different fingerprints share one checkpoint
  // directory — the served-job pattern when two jobs land in the same
  // tenant dir. keep-last pruning must apply per fingerprint group: a
  // global newest-N sweep would let each job's snapshots evict the
  // other's.
  auto ds = sim::make_human_like(20000, 4242, 15.0);
  const auto dir = fresh_dir("prune_groups");
  auto cfg_a = ckpt_config(dir);
  cfg_a.checkpoint.keep_last = 1;
  auto cfg_b = cfg_a;
  cfg_b.kmer.min_count = 2;  // different fingerprint
  cfg_b.sync_k();

  // Interleave the two jobs twice; every snapshot commit re-runs prune.
  pipeline::Pipeline job_a(pgas::Topology{4, 2}, cfg_a);
  const auto expected_a = job_a.run(ds.reads, ds.libraries);
  pipeline::Pipeline job_b(pgas::Topology{4, 2}, cfg_b);
  const auto expected_b = job_b.run(ds.reads, ds.libraries);
  pipeline::Pipeline again_a(pgas::Topology{4, 2}, cfg_a);
  (void)again_a.run(ds.reads, ds.libraries);
  pipeline::Pipeline again_b(pgas::Topology{4, 2}, cfg_b);
  (void)again_b.run(ds.reads, ds.libraries);

  // Both groups survived the interleaved pruning: each config resumes
  // from its own snapshots without recomputing k-mer analysis.
  pipeline::Pipeline resume_a(pgas::Topology{4, 2}, cfg_a);
  const auto resumed_a = resume_a.resume(ds.reads, ds.libraries);
  expect_same_scaffolds(expected_a.scaffolds, resumed_a.scaffolds, "group a");
  EXPECT_EQ(resumed_a.wall_for(pipeline::kStageKmerAnalysis), 0.0);
  pipeline::Pipeline resume_b(pgas::Topology{4, 2}, cfg_b);
  const auto resumed_b = resume_b.resume(ds.reads, ds.libraries);
  expect_same_scaffolds(expected_b.scaffolds, resumed_b.scaffolds, "group b");
  EXPECT_EQ(resumed_b.wall_for(pipeline::kStageKmerAnalysis), 0.0);

  // The quota still bites within each group: far fewer entry dirs than
  // the 20 snapshots the four runs committed.
  std::size_t entry_dirs = 0;
  for (const auto& e : fs::directory_iterator(dir))
    entry_dirs += e.is_directory();
  EXPECT_LE(entry_dirs, 8u);
  fs::remove_all(dir);
}

TEST(Checkpoint, SeparateDirsNeverCrossPrune) {
  // Two interleaved jobs with distinct checkpoint dirs (distinct tenants
  // in server terms): aggressive keep-last in one dir must not disturb
  // the other's ability to resume.
  auto ds = sim::make_human_like(20000, 4242, 15.0);
  const auto dir_a = fresh_dir("tenant_a");
  const auto dir_b = fresh_dir("tenant_b");
  auto cfg_a = ckpt_config(dir_a);
  cfg_a.checkpoint.keep_last = 1;
  auto cfg_b = ckpt_config(dir_b);
  cfg_b.checkpoint.keep_last = 1;

  pipeline::Pipeline job_a(pgas::Topology{4, 2}, cfg_a);
  const auto expected_a = job_a.run(ds.reads, ds.libraries);
  pipeline::Pipeline job_b(pgas::Topology{4, 2}, cfg_b);
  const auto expected_b = job_b.run(ds.reads, ds.libraries);

  pipeline::Pipeline resume_a(pgas::Topology{4, 2}, cfg_a);
  expect_same_scaffolds(expected_a.scaffolds,
                        resume_a.resume(ds.reads, ds.libraries).scaffolds,
                        "tenant a");
  pipeline::Pipeline resume_b(pgas::Topology{4, 2}, cfg_b);
  expect_same_scaffolds(expected_b.scaffolds,
                        resume_b.resume(ds.reads, ds.libraries).scaffolds,
                        "tenant b");
  fs::remove_all(dir_a);
  fs::remove_all(dir_b);
}

TEST(Checkpoint, ResumeWithoutAnyCheckpointRunsFromScratch) {
  auto ds = sim::make_human_like(20000, 4242, 15.0);
  const auto dir = fresh_dir("empty");
  pipeline::Pipeline pipe(pgas::Topology{4, 2}, ckpt_config(dir));
  const auto result = pipe.resume(ds.reads, ds.libraries);
  ASSERT_FALSE(result.scaffolds.empty());
  EXPECT_GT(result.wall_for(pipeline::kStageKmerAnalysis), 0.0);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace hipmer
