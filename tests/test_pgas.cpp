#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <random>

#include "pgas/aggregating_engine.hpp"
#include "pgas/dist_hash_map.hpp"
#include "pgas/machine_model.hpp"
#include "pgas/read_cache.hpp"
#include "pgas/thread_team.hpp"
#include "pgas/topology.hpp"

namespace hipmer::pgas {
namespace {

TEST(Topology, NodeMapping) {
  Topology topo{10, 4};
  EXPECT_EQ(topo.node_of(0), 0);
  EXPECT_EQ(topo.node_of(3), 0);
  EXPECT_EQ(topo.node_of(4), 1);
  EXPECT_EQ(topo.node_of(9), 2);
  EXPECT_EQ(topo.num_nodes(), 3);
  EXPECT_TRUE(topo.same_node(4, 7));
  EXPECT_FALSE(topo.same_node(3, 4));
}

TEST(ThreadTeam, RunsEveryRankExactlyOnce) {
  ThreadTeam team(Topology{8, 4});
  std::atomic<int> counter{0};
  std::array<std::atomic<int>, 8> seen{};
  team.run([&](Rank& rank) {
    counter.fetch_add(1);
    seen[static_cast<std::size_t>(rank.id())].fetch_add(1);
    EXPECT_EQ(rank.nranks(), 8);
    EXPECT_EQ(rank.node(), rank.id() / 4);
  });
  EXPECT_EQ(counter.load(), 8);
  for (const auto& s : seen) EXPECT_EQ(s.load(), 1);
}

TEST(ThreadTeam, PropagatesExceptions) {
  ThreadTeam team(Topology{4, 4});
  EXPECT_THROW(
      team.run([&](Rank& rank) {
        if (rank.id() == 2) throw std::runtime_error("rank 2 failed");
      }),
      std::runtime_error);
}

TEST(Collectives, AllreduceSumMaxMin) {
  ThreadTeam team(Topology{6, 3});
  team.run([&](Rank& rank) {
    const int sum = rank.allreduce_sum(rank.id() + 1);
    EXPECT_EQ(sum, 21);  // 1+2+...+6
    const int mx = rank.allreduce_max(rank.id());
    EXPECT_EQ(mx, 5);
    const int mn = rank.allreduce_min(rank.id() + 10);
    EXPECT_EQ(mn, 10);
  });
}

TEST(Collectives, AllgatherOrdered) {
  ThreadTeam team(Topology{5, 2});
  team.run([&](Rank& rank) {
    const auto all = rank.allgather(rank.id() * rank.id());
    ASSERT_EQ(all.size(), 5u);
    for (int r = 0; r < 5; ++r) EXPECT_EQ(all[static_cast<std::size_t>(r)], r * r);
  });
}

TEST(Collectives, AllgathervVariableSizes) {
  ThreadTeam team(Topology{4, 2});
  team.run([&](Rank& rank) {
    std::vector<int> mine(static_cast<std::size_t>(rank.id()), rank.id());
    const auto all = rank.allgatherv(mine);
    // Sizes 0+1+2+3 = 6 elements, in rank order.
    ASSERT_EQ(all.size(), 6u);
    EXPECT_EQ(all, (std::vector<int>{1, 2, 2, 3, 3, 3}));
  });
}

TEST(Collectives, BroadcastFromNonZeroRoot) {
  ThreadTeam team(Topology{4, 2});
  team.run([&](Rank& rank) {
    const double v = rank.broadcast(rank.id() == 2 ? 2.718 : -1.0, 2);
    EXPECT_DOUBLE_EQ(v, 2.718);
  });
}

TEST(Collectives, ExscanSum) {
  ThreadTeam team(Topology{5, 5});
  team.run([&](Rank& rank) {
    const int prefix = rank.exscan_sum(10);
    EXPECT_EQ(prefix, rank.id() * 10);
  });
}

TEST(Collectives, AlltoallvDeliversExactly) {
  const int p = 6;
  ThreadTeam team(Topology{p, 3});
  team.run([&](Rank& rank) {
    // Rank r sends r*1000+d repeated (d+1) times to each destination d.
    std::vector<std::vector<int>> out(static_cast<std::size_t>(p));
    for (int d = 0; d < p; ++d)
      out[static_cast<std::size_t>(d)].assign(static_cast<std::size_t>(d + 1),
                                              rank.id() * 1000 + d);
    const auto in = rank.alltoallv(out);
    // This rank receives (id+1) copies of s*1000+id from every sender s.
    ASSERT_EQ(in.size(), static_cast<std::size_t>(p * (rank.id() + 1)));
    std::size_t idx = 0;
    for (int s = 0; s < p; ++s)
      for (int c = 0; c <= rank.id(); ++c)
        EXPECT_EQ(in[idx++], s * 1000 + rank.id());
  });
}

TEST(Collectives, AlltoallvAllEmptyDestinations) {
  const int p = 4;
  ThreadTeam team(Topology{p, 2});
  team.run([&](Rank& rank) {
    std::vector<std::vector<int>> out(static_cast<std::size_t>(p));
    const auto in = rank.alltoallv(out);
    EXPECT_TRUE(in.empty());
  });
}

TEST(Collectives, AlltoallvSomeEmptyContributions) {
  // Only even ranks send; everyone still converges and receives exactly
  // the even ranks' payloads.
  const int p = 6;
  ThreadTeam team(Topology{p, 3});
  team.run([&](Rank& rank) {
    std::vector<std::vector<int>> out(static_cast<std::size_t>(p));
    if (rank.id() % 2 == 0)
      for (int d = 0; d < p; ++d)
        out[static_cast<std::size_t>(d)].push_back(rank.id());
    const auto in = rank.alltoallv(out);
    ASSERT_EQ(in.size(), 3u);  // ranks 0, 2, 4
    EXPECT_EQ(in, (std::vector<int>{0, 2, 4}));
  });
}

TEST(Collectives, AllgathervAllEmpty) {
  ThreadTeam team(Topology{4, 2});
  team.run([&](Rank& rank) {
    const auto all = rank.allgatherv(std::vector<int>{});
    EXPECT_TRUE(all.empty());
  });
}

TEST(Collectives, SingleRankTeam) {
  // A team of one: every collective degenerates to the identity and must
  // not deadlock on itself.
  ThreadTeam team(Topology{1, 1});
  team.run([&](Rank& rank) {
    EXPECT_EQ(rank.nranks(), 1);
    rank.barrier();
    EXPECT_EQ(rank.allreduce_sum(7), 7);
    EXPECT_EQ(rank.allreduce_max(-3), -3);
    EXPECT_EQ(rank.exscan_sum(5), 0);
    EXPECT_DOUBLE_EQ(rank.broadcast(1.5, 0), 1.5);
    EXPECT_EQ(rank.allgather(9), std::vector<int>{9});
    EXPECT_EQ(rank.allgatherv(std::vector<int>{1, 2}),
              (std::vector<int>{1, 2}));
    std::vector<std::vector<int>> out{{42}};
    EXPECT_EQ(rank.alltoallv(out), std::vector<int>{42});
    rank.barrier();
  });
}

TEST(Collectives, RepeatedBarriersStayInLockstep) {
  ThreadTeam team(Topology{8, 2});
  std::atomic<int> phase_sum{0};
  team.run([&](Rank& rank) {
    for (int round = 0; round < 50; ++round) {
      phase_sum.fetch_add(1);
      rank.barrier();
      EXPECT_EQ(phase_sum.load() % 8, 0) << "round " << round;
      rank.barrier();
    }
  });
}

// ---- DistHashMap ----

using Map = DistHashMap<std::uint64_t, std::uint64_t>;

struct SumMerge {
  void operator()(std::uint64_t& a, const std::uint64_t& b) const { a += b; }
};
using CountMap = DistHashMap<std::uint64_t, std::uint64_t,
                             std::hash<std::uint64_t>, SumMerge>;

TEST(DistHashMap, InsertFindAcrossRanks) {
  ThreadTeam team(Topology{4, 2});
  Map map(team, Map::Config{.global_capacity = 1024, .flush_threshold = 16});
  team.run([&](Rank& rank) {
    // Each rank inserts a disjoint key range.
    for (std::uint64_t i = 0; i < 100; ++i) {
      const std::uint64_t key = static_cast<std::uint64_t>(rank.id()) * 1000 + i;
      map.update(rank, key, key * 2);
    }
    rank.barrier();
    // Every rank can read every key.
    for (int r = 0; r < rank.nranks(); ++r) {
      for (std::uint64_t i = 0; i < 100; ++i) {
        const std::uint64_t key = static_cast<std::uint64_t>(r) * 1000 + i;
        const auto v = map.find(rank, key);
        ASSERT_TRUE(v.has_value()) << key;
        EXPECT_EQ(*v, key * 2);
      }
    }
    EXPECT_FALSE(map.find(rank, 999999u).has_value());
  });
  EXPECT_EQ(map.size_unsafe(), 400u);
}

TEST(DistHashMap, ConcurrentSumsAreExact) {
  // All ranks hammer the same small key set with additive updates; the
  // totals must be exact (per-bucket locking, no lost updates).
  const int p = 8;
  ThreadTeam team(Topology{p, 4});
  CountMap map(team, CountMap::Config{.global_capacity = 64, .flush_threshold = 8});
  const int updates_per_rank = 5000;
  team.run([&](Rank& rank) {
    std::mt19937_64 rng(static_cast<std::uint64_t>(rank.id()));
    for (int i = 0; i < updates_per_rank; ++i)
      map.update(rank, rng() % 10, 1);
  });
  std::atomic<std::uint64_t> total{0};
  team.run([&](Rank& rank) {
    if (!rank.is_root()) return;
    for (std::uint64_t key = 0; key < 10; ++key)
      total += map.find(rank, key).value_or(0);
  });
  EXPECT_EQ(total.load(), static_cast<std::uint64_t>(p) * updates_per_rank);
}

TEST(DistHashMap, BufferedPathMatchesUnbuffered) {
  const int p = 4;
  ThreadTeam team(Topology{p, 2});
  CountMap direct(team, CountMap::Config{.global_capacity = 2048, .flush_threshold = 1});
  CountMap buffered(team, CountMap::Config{.global_capacity = 2048, .flush_threshold = 64});
  team.run([&](Rank& rank) {
    std::mt19937_64 rng(static_cast<std::uint64_t>(rank.id()) + 99);
    for (int i = 0; i < 2000; ++i) {
      const std::uint64_t key = rng() % 500;
      direct.update(rank, key, 1);
      buffered.update_buffered(rank, key, 1);
    }
    buffered.flush(rank);
    rank.barrier();
    for (std::uint64_t key = 0; key < 500; ++key)
      EXPECT_EQ(direct.find(rank, key).value_or(0),
                buffered.find(rank, key).value_or(0));
  });
}

TEST(DistHashMap, AggregatingStoresReduceMessageCount) {
  const int p = 4;
  ThreadTeam team(Topology{p, 1});  // every rank its own node
  CountMap fine(team, CountMap::Config{.global_capacity = 4096, .flush_threshold = 1});
  // Key ≡ (rank+1) mod p, so every update targets a remote owner
  // (std::hash<uint64_t> is the identity in libstdc++).
  auto remote_key = [p](int rank, std::uint64_t i) {
    return i * static_cast<std::uint64_t>(p) +
           static_cast<std::uint64_t>((rank + 1) % p);
  };
  team.run([&](Rank& rank) {
    for (std::uint64_t i = 0; i < 1000; ++i)
      fine.update(rank, remote_key(rank.id(), i), 1);
  });
  const auto fine_stats = team.snapshot_all();
  team.reset_stats();
  CountMap coarse(team, CountMap::Config{.global_capacity = 4096, .flush_threshold = 256});
  team.run([&](Rank& rank) {
    for (std::uint64_t i = 0; i < 1000; ++i)
      coarse.update_buffered(rank, remote_key(rank.id(), i), 1);
    coarse.flush(rank);
  });
  const auto coarse_stats = team.snapshot_all();
  std::uint64_t fine_msgs = 0;
  std::uint64_t coarse_msgs = 0;
  for (int r = 0; r < p; ++r) {
    fine_msgs += fine_stats[static_cast<std::size_t>(r)].total_msgs();
    coarse_msgs += coarse_stats[static_cast<std::size_t>(r)].total_msgs();
  }
  // 256-element batches should cut message count by roughly 256x.
  EXPECT_GT(fine_msgs, coarse_msgs * 100);
}

TEST(DistHashMap, IfPresentPolicySkipsNewKeys) {
  ThreadTeam team(Topology{2, 2});
  CountMap map(team, CountMap::Config{.global_capacity = 128, .flush_threshold = 4});
  team.run([&](Rank& rank) {
    if (rank.id() == 0) map.update(rank, 42u, 5);
    rank.barrier();
    map.update(rank, 42u, 1, CountMap::Policy::kIfPresent);
    map.update(rank, 43u, 1, CountMap::Policy::kIfPresent);
    rank.barrier();
    EXPECT_EQ(map.find(rank, 42u).value_or(0), 7u);  // 5 + 1 + 1
    EXPECT_FALSE(map.find(rank, 43u).has_value());
  });
}

TEST(DistHashMap, ModifyInPlace) {
  ThreadTeam team(Topology{3, 3});
  Map map(team, Map::Config{.global_capacity = 64, .flush_threshold = 4});
  team.run([&](Rank& rank) {
    if (rank.is_root()) map.update(rank, 7u, 100);
    rank.barrier();
    const auto r = map.modify(rank, 7u, [](std::uint64_t& v) {
      ++v;
      return v;
    });
    ASSERT_TRUE(r.has_value());
    rank.barrier();
    EXPECT_EQ(map.find(rank, 7u).value_or(0), 103u);  // 100 + one per rank
    // modify() is a store: reopen the table with a barrier before issuing
    // it, or it races the find() other ranks run in the same phase.
    rank.barrier();
    EXPECT_FALSE(map.modify(rank, 8u, [](std::uint64_t& v) { return v; }).has_value());
  });
}

TEST(DistHashMap, EraseLocalIf) {
  ThreadTeam team(Topology{4, 2});
  Map map(team, Map::Config{.global_capacity = 1024, .flush_threshold = 8});
  team.run([&](Rank& rank) {
    if (rank.is_root())
      for (std::uint64_t i = 0; i < 200; ++i) map.update(rank, i, i);
    rank.barrier();
    map.erase_local_if(rank, [](const std::uint64_t&, const std::uint64_t& v) {
      return v % 2 == 0;
    });
    rank.barrier();
    for (std::uint64_t i = 0; i < 200; ++i)
      EXPECT_EQ(map.find(rank, i).has_value(), i % 2 == 1) << i;
  });
  EXPECT_EQ(map.size_unsafe(), 100u);
}

TEST(DistHashMap, ForEachLocalVisitsOwnShardExactly) {
  const int p = 4;
  ThreadTeam team(Topology{p, 2});
  Map map(team, Map::Config{.global_capacity = 4096, .flush_threshold = 8});
  std::atomic<std::uint64_t> visited{0};
  team.run([&](Rank& rank) {
    for (std::uint64_t i = 0; i < 500; ++i)
      if (static_cast<int>(i) % p == rank.id()) map.update(rank, i, 1);
    rank.barrier();
    map.for_each_local(rank, [&](const std::uint64_t& k, std::uint64_t& v) {
      EXPECT_EQ(map.owner_of(k), static_cast<std::uint32_t>(rank.id()));
      EXPECT_EQ(v, 1u);
      visited.fetch_add(1);
    });
  });
  EXPECT_EQ(visited.load(), 500u);
}

TEST(DistHashMap, CustomRankMapperControlsPlacement) {
  ThreadTeam team(Topology{4, 2});
  Map map(team, Map::Config{.global_capacity = 256, .flush_threshold = 4});
  map.set_rank_mapper([](std::uint64_t) { return 3u; });  // everything on rank 3
  team.run([&](Rank& rank) {
    map.update(rank, static_cast<std::uint64_t>(rank.id()), 1);
    rank.barrier();
    EXPECT_EQ(map.local_size(3), 4u);
    EXPECT_EQ(map.local_size(rank.id() == 3 ? 0 : rank.id()), 0u);
  });
}

// ---- AggregatingEngine / batched lookups / read cache ----

TEST(AggregatingEngine, FlushesAtThresholdAndDrainsRoundRobin) {
  AggregatingEngine<int> engine(4, 3);
  std::vector<std::pair<std::uint32_t, std::vector<int>>> batches;
  auto record = [&](std::uint32_t dest, std::vector<int>& ops) {
    batches.emplace_back(dest, ops);
  };
  // Two ops stay buffered; the third auto-flushes the full batch.
  engine.enqueue(0, 2, 10, record);
  engine.enqueue(0, 2, 11, record);
  EXPECT_TRUE(batches.empty());
  EXPECT_EQ(engine.pending(0), 2u);
  engine.enqueue(0, 2, 12, record);
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_EQ(batches[0].first, 2u);
  EXPECT_EQ(batches[0].second, (std::vector<int>{10, 11, 12}));
  EXPECT_EQ(engine.pending(0), 0u);

  // flush() drains round-robin from the initiator's successor: rank 2's
  // buffers drain in dest order 3, 0, 1.
  batches.clear();
  engine.enqueue(2, 0, 1, record);
  engine.enqueue(2, 1, 2, record);
  engine.enqueue(2, 3, 3, record);
  engine.flush(2, record);
  ASSERT_EQ(batches.size(), 3u);
  EXPECT_EQ(batches[0].first, 3u);
  EXPECT_EQ(batches[1].first, 0u);
  EXPECT_EQ(batches[2].first, 1u);
  EXPECT_EQ(engine.pending(2), 0u);
  // A rank that never buffered flushes as a no-op (lazy rows).
  engine.flush(1, record);
  EXPECT_EQ(batches.size(), 3u);
}

TEST(ReadCache, LruEvictionAndCounters) {
  ReadCache<std::uint64_t, int, std::hash<std::uint64_t>> cache(2);
  EXPECT_EQ(cache.lookup(1), nullptr);
  cache.insert(1, 100);
  cache.insert(2, 200);
  ASSERT_NE(cache.lookup(1), nullptr);  // 1 is now most recent
  cache.insert(3, 300);                 // evicts 2 (LRU)
  EXPECT_EQ(cache.lookup(2), nullptr);
  ASSERT_NE(cache.lookup(1), nullptr);
  EXPECT_EQ(*cache.lookup(3), 300);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.hits(), 3u);
  EXPECT_EQ(cache.misses(), 2u);
}

TEST(ReadCache, VersionChangeDropsEverything) {
  ReadCache<std::uint64_t, int, std::hash<std::uint64_t>> cache(8);
  cache.check_version(1);
  cache.insert(5, 50);
  cache.check_version(1);  // unchanged version: cache intact
  EXPECT_NE(cache.lookup(5), nullptr);
  cache.check_version(2);  // table was written: everything goes
  EXPECT_EQ(cache.lookup(5), nullptr);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(DistHashMap, BatchedLookupsMatchFind) {
  const int p = 4;
  ThreadTeam team(Topology{p, 2});
  Map map(team, Map::Config{.global_capacity = 2048, .flush_threshold = 32});
  team.run([&](Rank& rank) {
    for (std::uint64_t i = 0; i < 200; ++i) {
      const std::uint64_t key = static_cast<std::uint64_t>(rank.id()) * 1000 + i;
      map.update(rank, key, key + 7);
    }
    rank.barrier();
    // Probe every key plus a stripe of absent ones; replies (in any order,
    // possibly inside find_buffered) must match the fine-grained path.
    std::vector<std::uint64_t> keys;
    for (int r = 0; r < p; ++r)
      for (std::uint64_t i = 0; i < 250; ++i)  // 200 present + 50 absent
        keys.push_back(static_cast<std::uint64_t>(r) * 1000 + i);
    // Fine-grained reference pass first, then a barrier: the comparison
    // itself must not mix fine and batched lookups in one phase (the
    // checker's mixed-access rule — calling find() from inside a batched
    // reply handler was exactly that).
    std::vector<std::optional<std::uint64_t>> expected;
    expected.reserve(keys.size());
    for (const auto& key : keys) expected.push_back(map.find(rank, key));
    rank.barrier();
    std::vector<char> answered(keys.size(), 0);
    auto check = [&](const std::uint64_t& key, const std::uint64_t* value,
                     std::uint64_t tag) {
      answered[static_cast<std::size_t>(tag)] = 1;
      const auto& exp = expected[static_cast<std::size_t>(tag)];
      ASSERT_EQ(value != nullptr, exp.has_value()) << key;
      if (value != nullptr) {
        EXPECT_EQ(*value, *exp);
      }
    };
    for (std::size_t i = 0; i < keys.size(); ++i)
      map.find_buffered(rank, keys[i], i, check);
    map.process_lookups(rank, check);
    for (std::size_t i = 0; i < keys.size(); ++i)
      EXPECT_EQ(answered[i], 1) << keys[i];
  });
}

TEST(DistHashMap, DrainInvariantAfterFlushAndProcessLookups) {
  const int p = 4;
  ThreadTeam team(Topology{p, 2});
  Map map(team, Map::Config{.global_capacity = 1024, .flush_threshold = 1000});
  std::atomic<std::uint64_t> replies{0};
  team.run([&](Rank& rank) {
    // Far below the threshold: everything stays buffered until the
    // explicit drain, and nothing is left behind afterwards.
    for (std::uint64_t i = 0; i < 10; ++i)
      map.update_buffered(rank, i * 131, i);
    EXPECT_GT(map.pending_store_ops(rank.id()), 0u);
    map.flush(rank);
    EXPECT_EQ(map.pending_store_ops(rank.id()), 0u);
    rank.barrier();

    auto count = [&](const std::uint64_t&, const std::uint64_t*,
                     std::uint64_t) { replies.fetch_add(1); };
    for (std::uint64_t i = 0; i < 10; ++i)
      map.find_buffered(rank, i * 131, i, count);
    map.process_lookups(rank, count);
    EXPECT_EQ(map.pending_lookups(rank.id()), 0u);
  });
  // Every queued lookup produced exactly one reply.
  EXPECT_EQ(replies.load(), static_cast<std::uint64_t>(p) * 10u);
}

TEST(DistHashMap, ReadCacheNeverServesStaleValues) {
  // A value cached during one read phase must not survive a write phase:
  // the table's write version moves and the cache self-invalidates.
  ThreadTeam team(Topology{2, 1});
  Map map(team, Map::Config{.global_capacity = 64, .flush_threshold = 8});
  map.set_rank_mapper([](std::uint64_t) { return 1u; });  // all keys on rank 1
  team.run([&](Rank& rank) {
    if (rank.id() == 1) map.update(rank, 7u, 100);
    rank.barrier();
    if (rank.id() == 0) {
      map.enable_read_cache(rank, 16);
      std::uint64_t seen = 0;
      auto capture = [&](const std::uint64_t&, const std::uint64_t* v,
                         std::uint64_t) { seen = v ? *v : 0; };
      map.find_buffered(rank, 7u, 0, capture);
      map.process_lookups(rank, capture);
      EXPECT_EQ(seen, 100u);
      // Cached now: a repeat lookup is a hit.
      map.find_buffered(rank, 7u, 0, capture);
      map.process_lookups(rank, capture);
      EXPECT_EQ(map.read_cache_stats(rank.id()).hits, 1u);
    }
    rank.barrier();
    if (rank.id() == 1) map.update(rank, 7u, 999);  // write phase
    rank.barrier();
    if (rank.id() == 0) {
      // Deliberate contract violation: the cache is left enabled across the
      // write phase above, precisely to prove the version bump makes it
      // self-invalidate (the safety net under the stale-cache-across-write
      // rule). RelaxedPhase documents the intent and keeps the checker from
      // aborting the probe.
      pgas::RelaxedPhase relaxed(rank, map);
      std::uint64_t seen = 0;
      auto capture = [&](const std::uint64_t&, const std::uint64_t* v,
                         std::uint64_t) { seen = v ? *v : 0; };
      map.find_buffered(rank, 7u, 0, capture);
      map.process_lookups(rank, capture);
      EXPECT_EQ(seen, 999u) << "cache served a value across a write phase";
      map.disable_read_cache(rank);
    }
  });
}

TEST(DistHashMap, CachedBatchedLookupsCutOffnodeMessages) {
  // Re-probing the same remote key set: fine-grained pays one off-node
  // message per probe; batching pays one per batch; the cache answers
  // repeats locally.
  const int p = 4;
  ThreadTeam team(Topology{p, 1});  // every rank its own node
  Map map(team, Map::Config{.global_capacity = 4096, .flush_threshold = 64});
  auto remote_key = [p](int rank, std::uint64_t i) {
    return i * static_cast<std::uint64_t>(p) +
           static_cast<std::uint64_t>((rank + 1) % p);
  };
  team.run([&](Rank& rank) {
    for (std::uint64_t i = 0; i < 100; ++i)
      map.update(rank, remote_key((rank.id() + p - 1) % p, i), 1);
  });
  team.reset_stats();
  const int rounds = 20;
  auto sink = [](const std::uint64_t&, const std::uint64_t*, std::uint64_t) {};
  team.run([&](Rank& rank) {
    for (int round = 0; round < rounds; ++round)
      for (std::uint64_t i = 0; i < 100; ++i)
        (void)map.find(rank, remote_key(rank.id(), i));
  });
  const auto fine = team.snapshot_all();
  team.reset_stats();
  team.run([&](Rank& rank) {
    map.enable_read_cache(rank, 4096);
    for (int round = 0; round < rounds; ++round) {
      for (std::uint64_t i = 0; i < 100; ++i)
        map.find_buffered(rank, remote_key(rank.id(), i), i, sink);
      map.process_lookups(rank, sink);  // round 1's replies fill the cache
    }
    map.disable_read_cache(rank);
  });
  const auto cached = team.snapshot_all();
  std::uint64_t fine_msgs = 0;
  std::uint64_t cached_msgs = 0;
  std::uint64_t cache_hits = 0;
  for (int r = 0; r < p; ++r) {
    fine_msgs += fine[static_cast<std::size_t>(r)].offnode_msgs;
    cached_msgs += cached[static_cast<std::size_t>(r)].offnode_msgs;
    cache_hits += cached[static_cast<std::size_t>(r)].read_cache_hits;
  }
  EXPECT_EQ(fine_msgs, static_cast<std::uint64_t>(p) * rounds * 100);
  // Round 1 misses fill the cache (100 keys / 64-batches = 2 messages per
  // rank); rounds 2..20 are all hits.
  EXPECT_EQ(cached_msgs, static_cast<std::uint64_t>(p) * 2);
  EXPECT_EQ(cache_hits, static_cast<std::uint64_t>(p) * (rounds - 1) * 100);
}

TEST(DistHashMap, FindMissChargesKeyOnlyBytes) {
  // Satellite of the charging model: a miss ships only the key-sized
  // request; a hit additionally ships the value back.
  ThreadTeam team(Topology{2, 1});
  Map map(team, Map::Config{.global_capacity = 64, .flush_threshold = 8});
  map.set_rank_mapper([](std::uint64_t) { return 1u; });
  team.run([&](Rank& rank) {
    if (rank.id() == 1) map.update(rank, 1u, 5);
  });
  team.reset_stats();
  team.run([&](Rank& rank) {
    if (rank.id() == 0) {
      EXPECT_TRUE(map.find(rank, 1u).has_value());   // hit
      EXPECT_FALSE(map.find(rank, 2u).has_value());  // miss
    }
  });
  const auto stats = team.snapshot_all();
  EXPECT_EQ(stats[0].offnode_bytes,
            2 * sizeof(std::uint64_t)      // two key-sized requests
                + sizeof(std::uint64_t));  // one value-sized reply (the hit)
  EXPECT_EQ(stats[0].offnode_msgs, 2u);
}

TEST(CommStats, LocalityClassification) {
  // 2 nodes of 2 ranks. Rank 0 sends to rank 1 (on-node) and rank 2
  // (off-node) via a rank mapper that pins keys to specific owners.
  ThreadTeam team(Topology{4, 2});
  Map map(team, Map::Config{.global_capacity = 64, .flush_threshold = 1});
  map.set_rank_mapper([](std::uint64_t h) { return static_cast<std::uint32_t>(h % 4); });
  team.run([&](Rank& rank) {
    if (rank.id() == 0) {
      // std::hash<uint64_t> is identity for libstdc++, so key == owner here.
      map.update(rank, 0u, 1);  // local
      map.update(rank, 1u, 1);  // on-node
      map.update(rank, 2u, 1);  // off-node
      map.update(rank, 3u, 1);  // off-node
    }
  });
  const auto stats = team.snapshot_all();
  EXPECT_EQ(stats[0].local_accesses, 1u);
  EXPECT_EQ(stats[0].onnode_msgs, 1u);
  EXPECT_EQ(stats[0].offnode_msgs, 2u);
  EXPECT_EQ(stats[1].recv_ops, 1u);
  EXPECT_EQ(stats[2].recv_ops, 1u);
  EXPECT_EQ(stats[3].recv_ops, 1u);
}

TEST(MachineModel, OffNodeDominatesAndLoadImbalanceShows) {
  MachineModel model;
  CommStatsSnapshot local_heavy;
  local_heavy.local_accesses = 1000;
  CommStatsSnapshot off_heavy;
  off_heavy.offnode_msgs = 1000;
  EXPECT_GT(model.rank_seconds(off_heavy), 10 * model.rank_seconds(local_heavy));

  // Phase time is the max over ranks: one hot rank dominates.
  CommStatsSnapshot idle;
  CommStatsSnapshot hot;
  hot.recv_ops = 1'000'000;
  const Topology topo{4, 2};
  const double balanced =
      model.phase_seconds({idle, idle, idle, idle}, topo);
  const double imbalanced = model.phase_seconds({idle, idle, idle, hot}, topo);
  EXPECT_GT(imbalanced, balanced + 0.05);
}

TEST(MachineModel, IoSaturates) {
  MachineModel model;
  const std::uint64_t bytes = 100ull << 30;
  const double t1 = model.io_seconds(bytes, 1);
  const double t8 = model.io_seconds(bytes, 8);
  EXPECT_NEAR(t1 / t8, 8.0, 0.01);  // scales below saturation
  const double t100 = model.io_seconds(bytes, 100);
  const double t200 = model.io_seconds(bytes, 200);
  EXPECT_NEAR(t100, t200, 1e-9);  // flat beyond the saturation point
}

TEST(CommStats, SnapshotArithmetic) {
  CommStats stats;
  stats.add_work(10);
  stats.add_offnode_msg(100);
  const auto before = stats.snapshot();
  stats.add_work(5);
  stats.add_onnode_msg(50);
  const auto delta = stats.snapshot() - before;
  EXPECT_EQ(delta.work_units, 5u);
  EXPECT_EQ(delta.onnode_msgs, 1u);
  EXPECT_EQ(delta.offnode_msgs, 0u);
  EXPECT_EQ(delta.onnode_bytes, 50u);
}

}  // namespace
}  // namespace hipmer::pgas
