#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "seq/dna.hpp"
#include "sim/datasets.hpp"
#include "sim/genome_sim.hpp"
#include "sim/metagenome_sim.hpp"
#include "sim/read_sim.hpp"
#include "util/stats.hpp"

namespace hipmer::sim {
namespace {

TEST(GenomeSim, DeterministicInSeed) {
  GenomeConfig gc;
  gc.length = 10000;
  gc.seed = 5;
  const auto a = simulate_genome(gc);
  const auto b = simulate_genome(gc);
  EXPECT_EQ(a.primary, b.primary);
  gc.seed = 6;
  EXPECT_NE(simulate_genome(gc).primary, a.primary);
}

TEST(GenomeSim, LengthAndAlphabet) {
  GenomeConfig gc;
  gc.length = 5000;
  gc.repeat_fraction = 0.4;
  const auto g = simulate_genome(gc);
  EXPECT_EQ(g.primary.size(), 5000u);
  EXPECT_TRUE(seq::is_valid_dna(g.primary));
  EXPECT_FALSE(g.diploid());
}

TEST(GenomeSim, DiploidHeterozygosityRate) {
  GenomeConfig gc;
  gc.length = 200000;
  gc.heterozygosity = 0.002;
  gc.seed = 9;
  const auto g = simulate_genome(gc);
  ASSERT_TRUE(g.diploid());
  ASSERT_EQ(g.secondary.size(), g.primary.size());
  std::size_t diffs = 0;
  for (std::size_t i = 0; i < g.primary.size(); ++i)
    diffs += g.primary[i] != g.secondary[i];
  const double rate = static_cast<double>(diffs) / static_cast<double>(g.primary.size());
  EXPECT_NEAR(rate, 0.002, 0.0005);
}

TEST(GenomeSim, RepeatFractionCreatesDuplicateKmers) {
  GenomeConfig unique_cfg;
  unique_cfg.length = 100000;
  unique_cfg.seed = 21;
  GenomeConfig repeat_cfg = unique_cfg;
  repeat_cfg.repeat_fraction = 0.5;
  repeat_cfg.repeat_families = 6;
  repeat_cfg.repeat_unit_length = 400;

  auto count_distinct = [](const std::string& s) {
    std::map<std::string, int> counts;
    for (std::size_t i = 0; i + 21 <= s.size(); ++i) ++counts[s.substr(i, 21)];
    std::size_t repeated = 0;
    for (const auto& [k, c] : counts) repeated += c > 10;
    return repeated;
  };
  EXPECT_EQ(count_distinct(simulate_genome(unique_cfg).primary), 0u);
  EXPECT_GT(count_distinct(simulate_genome(repeat_cfg).primary), 1000u);
}

TEST(GenomeSim, MutateIndividualRate) {
  std::mt19937_64 rng(31);
  const auto g = random_dna(100000, rng);
  const auto m = mutate_individual(g, 0.003, 17);
  std::size_t diffs = 0;
  for (std::size_t i = 0; i < g.size(); ++i) diffs += g[i] != m[i];
  EXPECT_NEAR(static_cast<double>(diffs) / 100000.0, 0.003, 0.001);
}

TEST(ReadSim, CoverageAndLengths) {
  GenomeConfig gc;
  gc.length = 50000;
  gc.seed = 41;
  const auto g = simulate_genome(gc);
  LibraryConfig lc;
  lc.read_length = 100;
  lc.coverage = 10.0;
  lc.mean_insert = 300.0;
  lc.error_rate = 0.0;
  const auto reads = simulate_library(g, lc);
  EXPECT_EQ(reads.size() % 2, 0u);
  std::uint64_t bases = 0;
  for (const auto& r : reads) {
    EXPECT_EQ(r.seq.size(), 100u);
    EXPECT_EQ(r.quals.size(), r.seq.size());
    bases += r.seq.size();
  }
  const double cov = static_cast<double>(bases) / 50000.0;
  EXPECT_NEAR(cov, 10.0, 0.5);
}

TEST(ReadSim, ErrorFreeReadsAreExactSubstrings) {
  GenomeConfig gc;
  gc.length = 20000;
  gc.seed = 43;
  const auto g = simulate_genome(gc);
  LibraryConfig lc;
  lc.read_length = 80;
  lc.coverage = 3.0;
  lc.error_rate = 0.0;
  const auto reads = simulate_library(g, lc);
  for (std::size_t i = 0; i < std::min<std::size_t>(reads.size(), 100); ++i) {
    const auto& r = reads[i];
    const bool fwd = g.primary.find(r.seq) != std::string::npos;
    const bool rev = g.primary.find(seq::revcomp(r.seq)) != std::string::npos;
    EXPECT_TRUE(fwd || rev) << r.name;
  }
}

TEST(ReadSim, InsertSizeDistributionRecoverable) {
  // Mate placement must encode the insert size: for an error-free pair,
  // distance between mate0 start and mate1 end (on the forward strand)
  // equals the fragment length.
  GenomeConfig gc;
  gc.length = 100000;
  gc.seed = 47;
  const auto g = simulate_genome(gc);
  LibraryConfig lc;
  lc.read_length = 50;
  lc.coverage = 5.0;
  lc.mean_insert = 400.0;
  lc.stddev_insert = 25.0;
  lc.error_rate = 0.0;
  const auto reads = simulate_library(g, lc);
  std::vector<double> inserts;
  for (std::size_t i = 0; i + 1 < reads.size(); i += 2) {
    const auto p0 = g.primary.find(reads[i].seq);
    const auto p1 = g.primary.find(seq::revcomp(reads[i + 1].seq));
    if (p0 == std::string::npos || p1 == std::string::npos) continue;
    if (p1 + 50 < p0) continue;
    inserts.push_back(static_cast<double>(p1 + 50 - p0));
  }
  ASSERT_GT(inserts.size(), 50u);
  const auto summary = util::summarize(inserts);
  EXPECT_NEAR(summary.mean, 400.0, 15.0);
  EXPECT_NEAR(summary.stddev, 25.0, 12.0);
}

TEST(ReadSim, ErrorRateApproximatelyRespected) {
  GenomeConfig gc;
  gc.length = 30000;
  gc.seed = 53;
  const auto g = simulate_genome(gc);
  LibraryConfig lc;
  lc.read_length = 100;
  lc.coverage = 8.0;
  lc.error_rate = 0.01;
  const auto reads = simulate_library(g, lc);
  // Errors show up as reads that are no longer exact substrings; count
  // mismatches of mate 0 against its true locus via best-effort search of
  // the error-free prefix. Simpler robust proxy: low-quality bases track
  // errors (the model gives errors low quality ~95% of the time).
  std::uint64_t low_q = 0;
  std::uint64_t total = 0;
  for (const auto& r : reads) {
    for (char q : r.quals) low_q += seq::phred(q) < 25;
    total += r.quals.size();
  }
  const double rate = static_cast<double>(low_q) / static_cast<double>(total);
  EXPECT_NEAR(rate, 0.01 * 0.95, 0.004);
}

TEST(ReadSim, ParseReadName) {
  std::uint64_t pair = 0;
  int mate = -1;
  EXPECT_TRUE(parse_read_name("pe395:12345/1", pair, mate));
  EXPECT_EQ(pair, 12345u);
  EXPECT_EQ(mate, 1);
  EXPECT_TRUE(parse_read_name("lib:0/0", pair, mate));
  EXPECT_EQ(pair, 0u);
  EXPECT_EQ(mate, 0);
  EXPECT_FALSE(parse_read_name("garbage", pair, mate));
  EXPECT_FALSE(parse_read_name("lib:/0", pair, mate));
  EXPECT_FALSE(parse_read_name("lib:5/2", pair, mate));
}

TEST(Metagenome, CommunityStructure) {
  MetagenomeConfig mc;
  mc.num_species = 20;
  mc.mean_genome_length = 20000;
  mc.total_coverage = 5.0;
  mc.seed = 61;
  const auto mg = simulate_metagenome(mc);
  EXPECT_EQ(mg.species.size(), 20u);
  double sum = 0;
  for (double a : mg.abundance) {
    EXPECT_GE(a, 0.0);
    sum += a;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
  EXPECT_GT(mg.reads.size(), 100u);
  EXPECT_EQ(mg.reads.size() % 2, 0u);
  // Mates stay adjacent after the shuffle.
  for (std::size_t i = 0; i + 1 < mg.reads.size(); i += 2) {
    std::uint64_t p0 = 0;
    std::uint64_t p1 = 0;
    int m0 = 0;
    int m1 = 0;
    ASSERT_TRUE(parse_read_name(mg.reads[i].name, p0, m0));
    ASSERT_TRUE(parse_read_name(mg.reads[i + 1].name, p1, m1));
    EXPECT_EQ(p0, p1);
    EXPECT_EQ(m0, 0);
    EXPECT_EQ(m1, 1);
  }
}

TEST(Datasets, HumanLikeShape) {
  auto ds = make_human_like(100000, 71);
  EXPECT_TRUE(ds.genome.diploid());
  ASSERT_EQ(ds.libraries.size(), 1u);
  EXPECT_EQ(ds.libraries[0].read_length, 101);
  EXPECT_NEAR(ds.libraries[0].mean_insert, 395.0, 1e-9);
  const double cov = static_cast<double>(ds.total_bases()) / 100000.0;
  EXPECT_NEAR(cov, 20.0, 1.5);
}

TEST(Datasets, WheatLikeShape) {
  auto ds = make_wheat_like(200000, 73);
  EXPECT_FALSE(ds.genome.diploid());
  ASSERT_EQ(ds.libraries.size(), 5u);  // 3 short + 2 long insert
  EXPECT_NEAR(ds.libraries[3].mean_insert, 1000.0, 1e-9);
  EXPECT_NEAR(ds.libraries[4].mean_insert, 4200.0, 1e-9);
}

}  // namespace
}  // namespace hipmer::sim
