#include <gtest/gtest.h>

#include "util/hash.hpp"
#include "util/options.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace hipmer::util {
namespace {

TEST(Hash, Mix64IsInjectiveish) {
  // Bijective mixers never collide on sequential inputs.
  std::set<std::uint64_t> out;
  for (std::uint64_t i = 0; i < 10000; ++i) out.insert(mix64(i));
  EXPECT_EQ(out.size(), 10000u);
}

TEST(Hash, Fmix64DiffersFromMix64) {
  int same = 0;
  for (std::uint64_t i = 0; i < 100; ++i) same += mix64(i) == fmix64(i);
  EXPECT_EQ(same, 0);
}

TEST(Hash, HashBytesDependsOnContent) {
  EXPECT_NE(hash_string("hello"), hash_string("hellp"));
  EXPECT_EQ(hash_string("hello"), hash_string("hello"));
  EXPECT_NE(hash_string(""), hash_string("a"));
}

TEST(Stats, N50KnownValues) {
  // Lengths 80,70,50,40,30,30 -> total 300, half 150; 80+70=150 -> N50=70.
  const auto stats = compute_assembly_stats({30, 70, 40, 80, 30, 50});
  EXPECT_EQ(stats.total_length, 300u);
  EXPECT_EQ(stats.n50, 70u);
  EXPECT_EQ(stats.l50, 2u);
  EXPECT_EQ(stats.max_length, 80u);
  EXPECT_EQ(stats.min_length, 30u);
  EXPECT_EQ(stats.num_sequences, 6u);
}

TEST(Stats, SingleSequence) {
  const auto stats = compute_assembly_stats(std::vector<std::uint64_t>{100});
  EXPECT_EQ(stats.n50, 100u);
  EXPECT_EQ(stats.l50, 1u);
  EXPECT_EQ(stats.n90, 100u);
}

TEST(Stats, EmptyInput) {
  const auto stats = compute_assembly_stats(std::vector<std::uint64_t>{});
  EXPECT_EQ(stats.num_sequences, 0u);
  EXPECT_EQ(stats.n50, 0u);
}

TEST(Stats, Summarize) {
  const auto s = summarize({1.0, 2.0, 3.0, 4.0, 5.0});
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_NEAR(s.stddev, 1.5811, 1e-3);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
}

TEST(Table, FormatsAndCounts) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"beta", "22"});
  EXPECT_EQ(t.num_rows(), 2u);
  const auto s = t.to_string();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("22"), std::string::npos);
  const auto csv = t.to_csv();
  EXPECT_EQ(csv, "name,value\nalpha,1\nbeta,22\n");
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(TextTable::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::fmt_pct(0.256, 1), "25.6%");
}

TEST(Options, ParsesFormsAndFallbacks) {
  // Note: a bare `--flag` consumes the following token as its value unless
  // that token starts with `--`, so positionals go before flags here.
  const char* argv[] = {"prog", "pos1", "--ranks", "16", "--genome=2000000",
                        "--rate", "0.5", "--verbose"};
  Options opts(8, argv);
  EXPECT_EQ(opts.get_int("ranks", 0), 16);
  EXPECT_EQ(opts.get_int("genome", 0), 2000000);
  EXPECT_TRUE(opts.get_bool("verbose", false));
  EXPECT_DOUBLE_EQ(opts.get_double("rate", 0.0), 0.5);
  EXPECT_EQ(opts.get("missing", "dflt"), "dflt");
  ASSERT_EQ(opts.positional().size(), 1u);
  EXPECT_EQ(opts.positional()[0], "pos1");
}

TEST(Timer, StageAccumulation) {
  StageTimer timer;
  timer.add("a", 1.0);
  timer.add("b", 2.0);
  timer.add("a", 0.5);
  EXPECT_DOUBLE_EQ(timer.get("a"), 1.5);
  EXPECT_DOUBLE_EQ(timer.get("b"), 2.0);
  EXPECT_DOUBLE_EQ(timer.total(), 3.5);
  // First-seen order preserved.
  ASSERT_EQ(timer.stages().size(), 2u);
  EXPECT_EQ(timer.stages()[0].first, "a");
  const int v = timer.time("c", [] { return 7; });
  EXPECT_EQ(v, 7);
  EXPECT_GE(timer.get("c"), 0.0);
}

}  // namespace
}  // namespace hipmer::util
