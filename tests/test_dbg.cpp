#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "dbg/contig_generator.hpp"
#include "dbg/oracle.hpp"
#include "kcount/kmer_analysis.hpp"
#include "seq/dna.hpp"
#include "seq/kmer_scanner.hpp"
#include "sim/genome_sim.hpp"
#include "sim/read_sim.hpp"

namespace hipmer::dbg {
namespace {

using seq::KmerT;

/// Run k-mer analysis then contig generation over `reads` with `nranks`;
/// returns the canonical contig sequences, sorted.
std::vector<Contig> assemble_contigs(const std::vector<seq::Read>& reads,
                                     int k, int nranks,
                                     const OraclePartition* oracle = nullptr,
                                     double* traversal_offnode = nullptr) {
  pgas::ThreadTeam team(pgas::Topology{nranks, 2});
  kcount::KmerAnalysisConfig kc;
  kc.k = k;
  kcount::KmerAnalysis ka(team, kc);
  team.run([&](pgas::Rank& rank) {
    std::vector<seq::Read> mine;
    for (std::size_t i = static_cast<std::size_t>(rank.id()); i < reads.size();
         i += static_cast<std::size_t>(rank.nranks()))
      mine.push_back(reads[i]);
    ka.run(rank, mine);
  });

  std::size_t total_ufx = 0;
  for (int r = 0; r < team.nranks(); ++r) total_ufx += ka.ufx(r).size();
  ContigGenConfig cc;
  cc.k = k;
  ContigGenerator gen(team, cc, total_ufx);
  if (oracle) gen.set_oracle(oracle);
  team.run([&](pgas::Rank& rank) {
    gen.build_graph(rank, ka.ufx(rank.id()));
    gen.traverse(rank);
  });
  if (traversal_offnode)
    *traversal_offnode = gen.total_lookup_stats().offnode_fraction();
  auto contigs = gen.all_contigs();
  std::sort(contigs.begin(), contigs.end(),
            [](const Contig& a, const Contig& b) { return a.seq < b.seq; });
  return contigs;
}

std::vector<std::string> contig_seqs(const std::vector<Contig>& contigs) {
  std::vector<std::string> seqs;
  seqs.reserve(contigs.size());
  for (const auto& c : contigs) seqs.push_back(c.seq);
  return seqs;
}

std::vector<seq::Read> perfect_reads(const std::string& genome, int read_len,
                                     int step) {
  // Tiling error-free single-end reads with ideal qualities.
  std::vector<seq::Read> reads;
  for (std::size_t i = 0; i + static_cast<std::size_t>(read_len) <= genome.size();
       i += static_cast<std::size_t>(step)) {
    seq::Read r;
    r.name = "t:" + std::to_string(i) + "/0";
    r.seq = genome.substr(i, static_cast<std::size_t>(read_len));
    r.quals.assign(r.seq.size(), 'I');
    reads.push_back(std::move(r));
  }
  return reads;
}

TEST(ContigGen, SingleChainReassemblesExactly) {
  // A repeat-free genome tiled densely: the de Bruijn graph is one chain
  // per genome "interior"; the assembled contig must contain the full
  // genome (up to canonical orientation).
  std::mt19937_64 rng(101);
  const auto genome = sim::random_dna(2000, rng);
  const auto reads = perfect_reads(genome, 80, 20);
  const auto contigs = assemble_contigs(reads, 31, 4);
  ASSERT_GE(contigs.size(), 1u);
  // Longest contig covers essentially the whole genome.
  std::size_t longest = 0;
  std::string longest_seq;
  for (const auto& c : contigs)
    if (c.seq.size() > longest) {
      longest = c.seq.size();
      longest_seq = c.seq;
    }
  EXPECT_GE(longest, genome.size() - 80);  // ends may be shallow-covered
  const auto rc = seq::revcomp(longest_seq);
  EXPECT_TRUE(genome.find(longest_seq) != std::string::npos ||
              genome.find(rc) != std::string::npos);
}

class ContigDeterminism : public ::testing::TestWithParam<int> {};

TEST_P(ContigDeterminism, ContigSetIndependentOfRankCount) {
  // The maximal-unbranched-chain decomposition is a graph property; the
  // parallel traversal must produce the identical canonical contig set for
  // every rank count.
  sim::GenomeConfig gc;
  gc.length = 30000;
  gc.repeat_fraction = 0.2;  // some forks so termination paths are hit
  gc.repeat_families = 3;
  gc.repeat_unit_length = 200;
  gc.seed = 103;
  const auto genome = sim::simulate_genome(gc);
  sim::LibraryConfig lc;
  lc.read_length = 100;
  lc.coverage = 12.0;
  lc.error_rate = 0.0;
  lc.seed = 104;
  const auto reads = sim::simulate_library(genome, lc);

  static std::vector<std::string> reference;  // from the first param run
  const auto contigs = contig_seqs(assemble_contigs(reads, 21, GetParam()));
  if (reference.empty()) {
    reference = contigs;
    ASSERT_GT(reference.size(), 1u);
  } else {
    EXPECT_EQ(contigs, reference) << "nranks=" << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Ranks, ContigDeterminism, ::testing::Values(1, 2, 3, 8));

TEST(ContigGen, ContigsAreSubstringsOfGenomeAndCoverIt) {
  sim::GenomeConfig gc;
  gc.length = 50000;
  gc.seed = 107;
  const auto genome = sim::simulate_genome(gc);
  sim::LibraryConfig lc;
  lc.read_length = 100;
  lc.coverage = 15.0;
  lc.error_rate = 0.0;
  lc.seed = 108;
  const auto reads = sim::simulate_library(genome, lc);
  const auto contigs = assemble_contigs(reads, 25, 4);

  std::uint64_t covered = 0;
  for (const auto& c : contigs) {
    const bool fwd = genome.primary.find(c.seq) != std::string::npos;
    const bool rev =
        genome.primary.find(seq::revcomp(c.seq)) != std::string::npos;
    EXPECT_TRUE(fwd || rev) << "contig of length " << c.seq.size()
                            << " not a genome substring";
    covered += c.seq.size();
  }
  // Error-free, 15x: nearly the whole genome assembles.
  EXPECT_GT(static_cast<double>(covered),
            0.95 * static_cast<double>(genome.primary.size()));
}

TEST(ContigGen, RepeatsFragmentAssemblyAtForks) {
  // Exact repeats longer than k create forks; contigs must terminate at
  // them (F/N states) rather than walk through.
  sim::GenomeConfig gc;
  gc.length = 40000;
  gc.repeat_fraction = 0.4;
  gc.repeat_families = 4;
  gc.repeat_unit_length = 300;  // >> k
  gc.seed = 109;
  const auto genome = sim::simulate_genome(gc);
  sim::LibraryConfig lc;
  lc.read_length = 100;
  lc.coverage = 15.0;
  lc.error_rate = 0.0;
  lc.seed = 110;
  const auto reads = sim::simulate_library(genome, lc);
  const auto contigs = assemble_contigs(reads, 21, 4);

  ASSERT_GT(contigs.size(), 10u) << "repeats must fragment the assembly";
  int fork_ends = 0;
  for (const auto& c : contigs) {
    fork_ends += (c.left.code == 'F' || c.left.code == 'N');
    fork_ends += (c.right.code == 'F' || c.right.code == 'N');
  }
  EXPECT_GT(fork_ends, static_cast<int>(contigs.size()) / 2);
  // All contigs still correct substrings.
  for (const auto& c : contigs) {
    const bool ok = genome.primary.find(c.seq) != std::string::npos ||
                    genome.primary.find(seq::revcomp(c.seq)) != std::string::npos;
    EXPECT_TRUE(ok);
  }
}

TEST(ContigGen, DepthTracksCoverage) {
  std::mt19937_64 rng(113);
  const auto genome = sim::random_dna(10000, rng);
  const auto reads = perfect_reads(genome, 100, 10);  // ~10x tiling
  const auto contigs = assemble_contigs(reads, 31, 2);
  ASSERT_GE(contigs.size(), 1u);
  // Interior k-mer depth is read_len/step = 10 minus boundary effects.
  double max_depth = 0;
  for (const auto& c : contigs) max_depth = std::max(max_depth, c.avg_depth);
  EXPECT_GT(max_depth, 5.0);
  EXPECT_LT(max_depth, 12.0);
}

TEST(ContigGen, CircularChainTerminates) {
  // A circular sequence: tile reads around the wrap point too. The
  // traversal must terminate via the cycle detection ('O') rather than
  // loop forever.
  std::mt19937_64 rng(127);
  const auto circle = sim::random_dna(500, rng);
  const std::string doubled = circle + circle;
  std::vector<seq::Read> reads;
  for (std::size_t i = 0; i < circle.size(); i += 7) {
    seq::Read r;
    r.name = "c:" + std::to_string(i) + "/0";
    r.seq = doubled.substr(i, 60);
    r.quals.assign(60, 'I');
    reads.push_back(std::move(r));
  }
  const auto contigs = assemble_contigs(reads, 21, 2);
  ASSERT_EQ(contigs.size(), 1u);
  EXPECT_GE(contigs[0].seq.size(), circle.size());
  EXPECT_TRUE(contigs[0].left.code == 'O' || contigs[0].right.code == 'O');
}

// ---- Oracle partitioning ----

TEST(Oracle, CoLocatesContigKmers) {
  std::mt19937_64 rng(131);
  std::vector<std::string> contigs;
  for (int i = 0; i < 16; ++i) contigs.push_back(sim::random_dna(800, rng));
  const pgas::Topology topo{8, 2};
  std::size_t total_kmers = 0;
  for (const auto& c : contigs) total_kmers += c.size() - 20;
  const auto oracle =
      OraclePartition::build(contigs, 21, topo, total_kmers * 4);
  EXPECT_LT(oracle.collision_rate(), 0.3);

  // For most contigs, the vast majority of k-mers resolve to one rank.
  int well_placed = 0;
  for (const auto& c : contigs) {
    std::map<std::uint32_t, int> owners;
    int n = 0;
    for (seq::KmerScanner<KmerT::kMaxK> it(c, 21); !it.done(); it.next()) {
      ++owners[oracle.rank_of(it.canonical().hash())];
      ++n;
    }
    int top = 0;
    for (const auto& [r, cnt] : owners) top = std::max(top, cnt);
    if (top > n * 8 / 10) ++well_placed;
  }
  EXPECT_GE(well_placed, 14);
}

TEST(Oracle, MoreSlotsFewerCollisions) {
  std::mt19937_64 rng(137);
  std::vector<std::string> contigs;
  for (int i = 0; i < 10; ++i) contigs.push_back(sim::random_dna(2000, rng));
  const pgas::Topology topo{4, 2};
  std::size_t total_kmers = 10 * (2000 - 20);
  const auto small = OraclePartition::build(contigs, 21, topo, total_kmers);
  const auto large = OraclePartition::build(contigs, 21, topo, total_kmers * 8);
  EXPECT_LT(large.collision_rate(), small.collision_rate());
  EXPECT_GT(large.memory_bytes(), small.memory_bytes());
}

TEST(Oracle, NodeModeKeepsKmersOnNode) {
  std::mt19937_64 rng(139);
  std::vector<std::string> contigs = {sim::random_dna(3000, rng),
                                      sim::random_dna(3000, rng)};
  const pgas::Topology topo{8, 4};  // 2 nodes
  const auto oracle = OraclePartition::build(
      contigs, 21, topo, 50000, OraclePartition::Granularity::kNode);
  // Each contig's k-mers land on ranks of a single node (modulo collisions).
  for (const auto& c : contigs) {
    std::map<int, int> node_counts;
    int n = 0;
    for (seq::KmerScanner<KmerT::kMaxK> it(c, 21); !it.done(); it.next()) {
      node_counts[topo.node_of(static_cast<int>(oracle.rank_of(it.canonical().hash())))]++;
      ++n;
    }
    int top = 0;
    for (const auto& [node, cnt] : node_counts) top = std::max(top, cnt);
    EXPECT_GT(top, n * 8 / 10);
  }
}

TEST(Oracle, TraversalWithOracleProducesSameContigs) {
  // Assemble individual 1, build an oracle from its contigs, then assemble
  // individual 2 (0.2% diverged) with and without the oracle: identical
  // contig sets, far less off-node communication.
  // Some repeat content so individual 1 assembles into many contigs — with
  // a single contig the cyclic contig->rank assignment cannot balance and
  // the oracle degenerates (real genomes yield millions of contigs).
  sim::GenomeConfig gc;
  gc.length = 40000;
  gc.repeat_fraction = 0.15;
  gc.repeat_families = 4;
  gc.repeat_unit_length = 200;
  gc.seed = 149;
  const auto genome1 = sim::simulate_genome(gc);
  const auto genome2_primary =
      sim::mutate_individual(genome1.primary, 0.002, 151);
  sim::Genome genome2;
  genome2.primary = genome2_primary;

  sim::LibraryConfig lc;
  lc.read_length = 100;
  lc.coverage = 12.0;
  lc.error_rate = 0.0;
  lc.seed = 152;
  const auto reads1 = sim::simulate_library(genome1, lc);
  lc.seed = 153;
  const auto reads2 = sim::simulate_library(genome2, lc);

  const int k = 25;
  const int nranks = 8;
  const auto contigs1 = assemble_contigs(reads1, k, nranks);
  std::vector<std::string> contig_strings = contig_seqs(contigs1);

  std::size_t total_kmers = 0;
  for (const auto& c : contig_strings) total_kmers += c.size();
  const pgas::Topology topo{nranks, 2};
  const auto oracle =
      OraclePartition::build(contig_strings, k, topo, total_kmers * 4);

  double plain_offnode = 0.0;
  double oracle_offnode = 0.0;
  const auto plain =
      contig_seqs(assemble_contigs(reads2, k, nranks, nullptr, &plain_offnode));
  const auto oracled =
      contig_seqs(assemble_contigs(reads2, k, nranks, &oracle, &oracle_offnode));

  EXPECT_EQ(plain, oracled) << "oracle must not change assembly output";

  // Traversal-phase communication: the oracle must cut the off-node
  // lookup fraction substantially. The paper's Table 2 reports a 41-44%
  // reduction for the memory-light "oracle-1" and 75-76% for "oracle-4";
  // at this test's tiny scale (69 contigs over 8 ranks) we require at
  // least the oracle-1 band.
  EXPECT_GT(plain_offnode, 0.3);
  EXPECT_LT(oracle_offnode, plain_offnode * 0.65);
}

}  // namespace
}  // namespace hipmer::dbg
