// HIPMER_CHECKED phase-discipline checker tests.
//
// Each violation class gets a test that deliberately commits it and asserts
// the checker reports the named diagnostic. The fixture swaps the process
// abort handler for one that records the Violation and throws
// PhaseViolation, which ThreadTeam::run propagates to the test body.
//
// This file is only built when the tree is configured with
// -DHIPMER_CHECKED=ON (see tests/CMakeLists.txt).

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "align/contig_store.hpp"
#include "pgas/dist_hash_map.hpp"
#include "pgas/fault.hpp"
#include "pgas/phase_checker.hpp"
#include "pgas/thread_team.hpp"

namespace hipmer {
namespace {

struct SumMerge {
  void operator()(std::uint64_t& a, const std::uint64_t& b) const { a += b; }
};
using Map = pgas::DistHashMap<std::uint64_t, std::uint64_t,
                              std::hash<std::uint64_t>, SumMerge>;

/// Smallest key that `owner` owns under the map's default placement.
std::uint64_t key_owned_by(int owner, int p) {
  for (std::uint64_t k = 0;; ++k) {
    if (std::hash<std::uint64_t>{}(k) % static_cast<std::uint64_t>(p) ==
        static_cast<std::uint64_t>(owner))
      return k;
  }
}

/// Cross-rank ordering without a barrier (barriers would advance the epoch
/// and legalize exactly the races these tests must create).
void await(const std::atomic<int>& flag, int value) {
  while (flag.load(std::memory_order_acquire) < value)
    std::this_thread::yield();
}

class PhaseCheckerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    previous_ = pgas::set_violation_handler([this](const pgas::Violation& v) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        violations_.push_back(v);
      }
      throw pgas::PhaseViolation(v);
    });
  }

  void TearDown() override { pgas::set_violation_handler(previous_); }

  [[nodiscard]] std::vector<pgas::Violation> violations() {
    std::lock_guard<std::mutex> lock(mu_);
    return violations_;
  }

 private:
  std::mutex mu_;
  std::vector<pgas::Violation> violations_;
  pgas::ViolationHandler previous_;
};

// ---- lookup-during-WRITE ----

TEST_F(PhaseCheckerTest, LookupWithOwnBufferedStoresPending) {
  pgas::ThreadTeam team(pgas::Topology{1, 1});
  Map map(team, Map::Config{.global_capacity = 256, .flush_threshold = 64});
  map.set_name("test.map");
  EXPECT_THROW(team.run([&](pgas::Rank& rank) {
                 map.update_buffered(rank, 7, 1);
                 (void)map.find(rank, 7);  // never flushed
               }),
               pgas::PhaseViolation);
  const auto vs = violations();
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].rule, pgas::kRuleLookupDuringWrite);
  EXPECT_EQ(vs[0].table, "test.map");
  EXPECT_EQ(vs[0].rank, 0);
  // The diagnostic carries both call sites, captured in this file.
  EXPECT_NE(std::string(vs[0].site.file).find("test_phase_checker"),
            std::string::npos);
  EXPECT_NE(std::string(vs[0].other_site.file).find("test_phase_checker"),
            std::string::npos);
}

TEST_F(PhaseCheckerTest, LookupRacingAnotherRanksStore) {
  pgas::ThreadTeam team(pgas::Topology{2, 2});
  Map map(team, Map::Config{.global_capacity = 256, .flush_threshold = 64});
  map.set_name("test.map");
  std::atomic<int> stored{0};
  EXPECT_THROW(team.run([&](pgas::Rank& rank) {
                 if (rank.id() == 0) {
                   map.update(rank, 3, 1);
                   stored.store(1, std::memory_order_release);
                 } else {
                   await(stored, 1);
                   (void)map.find(rank, 3);  // no barrier since the store
                 }
               }),
               pgas::PhaseViolation);
  const auto vs = violations();
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].rule, pgas::kRuleLookupDuringWrite);
  EXPECT_EQ(vs[0].rank, 1);
  EXPECT_EQ(vs[0].other_rank, 0);
}

// ---- store-during-READ ----

TEST_F(PhaseCheckerTest, StoreRacingAnotherRanksLookup) {
  pgas::ThreadTeam team(pgas::Topology{2, 2});
  Map map(team, Map::Config{.global_capacity = 256, .flush_threshold = 64});
  map.set_name("test.map");
  std::atomic<int> looked{0};
  EXPECT_THROW(team.run([&](pgas::Rank& rank) {
                 if (rank.id() == 1) {
                   (void)map.find(rank, 11);
                   looked.store(1, std::memory_order_release);
                 } else {
                   await(looked, 1);
                   map.update(rank, 11, 1);  // table still in its READ phase
                 }
               }),
               pgas::PhaseViolation);
  const auto vs = violations();
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].rule, pgas::kRuleStoreDuringRead);
  EXPECT_EQ(vs[0].rank, 0);
  EXPECT_EQ(vs[0].other_rank, 1);
}

// ---- undrained-rows-at-barrier ----

TEST_F(PhaseCheckerTest, BarrierWithBufferedRowsPending) {
  pgas::ThreadTeam team(pgas::Topology{1, 1});
  Map map(team, Map::Config{.global_capacity = 256, .flush_threshold = 64});
  map.set_name("test.map");
  EXPECT_THROW(team.run([&](pgas::Rank& rank) {
                 map.update_buffered(rank, 5, 1);
                 rank.barrier();  // no flush() before the phase boundary
               }),
               pgas::PhaseViolation);
  const auto vs = violations();
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].rule, pgas::kRuleUndrained);
  EXPECT_EQ(vs[0].table, "test.map");
  EXPECT_NE(vs[0].detail.find("1 buffered store"), std::string::npos);
}

// ---- stale-cache-across-write ----

TEST_F(PhaseCheckerTest, ReadCacheSurvivingAWritePhase) {
  const int p = 2;
  pgas::ThreadTeam team(pgas::Topology{p, 2});
  Map map(team, Map::Config{.global_capacity = 256, .flush_threshold = 64});
  map.set_name("test.map");
  const std::uint64_t remote = key_owned_by(0, p);  // remote from rank 1
  EXPECT_THROW(
      team.run([&](pgas::Rank& rank) {
        // Epoch 0: write phase.
        if (rank.id() == 0) map.update(rank, remote, 42);
        rank.barrier();
        // Epoch 1: rank 1 opens a cache and warms it. The missing
        // disable_read_cache *is* the bug under test, so the static lint
        // is waved off where the runtime checker must fire.
        if (rank.id() == 1) {
          map.enable_read_cache(rank, 8);  // lint-phases: allow(cache-undropped)
          map.find_buffered(rank, remote, 0,
                            [](const std::uint64_t&, const std::uint64_t*,
                               std::uint64_t) {});
          map.process_lookups(rank, [](const std::uint64_t&,
                                       const std::uint64_t*, std::uint64_t) {});
        }
        rank.barrier();
        // Epoch 2: a write phase — the cache should have been dropped.
        if (rank.id() == 0) map.update(rank, remote, 1);
        rank.barrier();
        // Epoch 3: rank 1 consults the stale cache.
        if (rank.id() == 1) {
          map.find_buffered(rank, remote, 1,
                            [](const std::uint64_t&, const std::uint64_t*,
                               std::uint64_t) {});
        }
      }),
      pgas::PhaseViolation);
  const auto vs = violations();
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].rule, pgas::kRuleStaleCache);
  EXPECT_EQ(vs[0].rank, 1);
  // The "other side" is the write that moved the table version.
  EXPECT_EQ(vs[0].other_rank, 0);
}

// ---- mismatched-collective ----

TEST_F(PhaseCheckerTest, RanksEnterDifferentCollectives) {
  pgas::ThreadTeam team(pgas::Topology{2, 2});
  EXPECT_THROW(team.run([&](pgas::Rank& rank) {
                 // Same barrier instance, different collectives. Both
                 // publish/consume identical slot traffic, so the only
                 // divergence is the collective kind itself.
                 if (rank.id() == 0) {
                   (void)rank.allreduce_sum(std::uint64_t{1});
                 } else {
                   (void)rank.allgather(std::uint64_t{1});
                 }
               }),
               pgas::PhaseViolation);
  const auto vs = violations();
  ASSERT_GE(vs.size(), 1u);
  EXPECT_EQ(vs[0].rule, pgas::kRuleMismatchedCollective);
  EXPECT_NE(vs[0].detail.find("allreduce"), std::string::npos);
  EXPECT_NE(vs[0].detail.find("allgather"), std::string::npos);
}

// ---- mixed-access ----

TEST_F(PhaseCheckerTest, FineAndBufferedStoresInOneEpoch) {
  pgas::ThreadTeam team(pgas::Topology{1, 1});
  Map map(team, Map::Config{.global_capacity = 256, .flush_threshold = 64});
  map.set_name("test.map");
  EXPECT_THROW(team.run([&](pgas::Rank& rank) {
                 map.update(rank, 1, 1);
                 map.update_buffered(rank, 2, 1);  // same epoch, same table
               }),
               pgas::PhaseViolation);
  const auto vs = violations();
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].rule, pgas::kRuleMixedAccess);
  // to_string() is the abort message: rule, table and both sites in one blob.
  const std::string msg = vs[0].to_string();
  EXPECT_NE(msg.find(pgas::kRuleMixedAccess), std::string::npos);
  EXPECT_NE(msg.find("test.map"), std::string::npos);
  EXPECT_NE(msg.find("test_phase_checker"), std::string::npos);
}

// ---- legal protocols stay silent ----

TEST_F(PhaseCheckerTest, BarrierReopensTheTable) {
  const int p = 2;
  pgas::ThreadTeam team(pgas::Topology{p, 2});
  Map map(team, Map::Config{.global_capacity = 256, .flush_threshold = 64});
  map.set_name("test.map");
  // The canonical bulk-synchronous cycle: WRITE -> flush -> barrier -> READ
  // -> barrier -> WRITE again. No diagnostics.
  team.run([&](pgas::Rank& rank) {
    for (int round = 0; round < 3; ++round) {
      for (std::uint64_t k = 0; k < 32; ++k)
        map.update_buffered(rank, k, 1);
      map.flush(rank);
      rank.barrier();
      for (std::uint64_t k = 0; k < 32; ++k)
        EXPECT_TRUE(map.find(rank, k).has_value());
      rank.barrier();
    }
  });
  EXPECT_TRUE(violations().empty());
}

TEST_F(PhaseCheckerTest, SameRankFineStoreThenReadIsAllowed) {
  // A single rank interleaving its own fine stores and reads is sequential
  // code — there is nothing to race.
  pgas::ThreadTeam team(pgas::Topology{1, 1});
  Map map(team, Map::Config{.global_capacity = 256, .flush_threshold = 64});
  team.run([&](pgas::Rank& rank) {
    map.update(rank, 9, 2);
    EXPECT_EQ(map.find(rank, 9).value_or(0), 2u);
    map.update(rank, 9, 3);
    EXPECT_EQ(map.find(rank, 9).value_or(0), 5u);
  });
  EXPECT_TRUE(violations().empty());
}

TEST_F(PhaseCheckerTest, RelaxedPhaseOptsOutOfTheRules) {
  pgas::ThreadTeam team(pgas::Topology{1, 1});
  Map map(team, Map::Config{.global_capacity = 256, .flush_threshold = 64});
  map.set_name("test.map");
  team.run([&](pgas::Rank& rank) {
    pgas::RelaxedPhase relaxed(rank, map);
    map.update(rank, 1, 1);
    map.update_buffered(rank, 2, 1);  // mixed-access, but relaxed
    (void)map.find(rank, 1);          // lookup-during-WRITE, but relaxed
    map.flush(rank);
  });
  EXPECT_TRUE(violations().empty());
}

// ---- ContigStore is held to the same contract ----

TEST_F(PhaseCheckerTest, ContigStoreDepthWriteRacingAFetch) {
  pgas::ThreadTeam team(pgas::Topology{2, 2});
  align::ContigStore store(team);
  std::atomic<int> fetched{0};
  EXPECT_THROW(team.run([&](pgas::Rank& rank) {
                 store.build(rank, {});  // ends with a barrier: store phase
                 if (rank.id() == 1) {
                   (void)store.fetch(rank, 0, 0, 4);
                   fetched.store(1, std::memory_order_release);
                 } else {
                   await(fetched, 1);
                   store.set_local_depth(rank, 0, 2.5);  // races the fetch
                 }
               }),
               pgas::PhaseViolation);
  const auto vs = violations();
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].rule, pgas::kRuleStoreDuringRead);
  EXPECT_EQ(vs[0].table, "align.contig_store");
  EXPECT_EQ(vs[0].rank, 0);
  EXPECT_EQ(vs[0].other_rank, 1);
}

// ---- fault injection: a killed team is not a phase violation ----

TEST_F(PhaseCheckerTest, RankKillUnwindReportsNoViolations) {
  // Rank 0 dies at a barrier while it still holds buffered rows. The unwind
  // (arrive_and_drop, survivors draining) must surface as RankKilled only —
  // the checker suppresses itself once fault injection fires, and a fresh
  // team restarts clean, mirroring the checkpoint/resume path.
  {
    pgas::ThreadTeam team(pgas::Topology{2, 2});
    Map map(team, Map::Config{.global_capacity = 256, .flush_threshold = 64});
    map.set_name("test.map");
    team.faults().set_plan(pgas::FaultPlan{0, "write", 0, 0});
    team.faults().begin_stage("write");
    EXPECT_THROW(team.run([&](pgas::Rank& rank) {
                   if (rank.id() == 0) {
                     // Dies at the barrier below with these rows buffered —
                     // exactly the state a real mid-phase crash leaves.
                     map.update_buffered(rank, 1, 1);
                   } else {
                     map.update_buffered(rank, 2, 1);
                     map.flush(rank);
                   }
                   rank.barrier();
                   (void)map.find(rank, 2);
                   rank.barrier();
                 }),
                 pgas::RankKilled);
    EXPECT_TRUE(team.faults().fired());
    EXPECT_TRUE(violations().empty());
  }
  // Restart: a fresh team and table run the same protocol to completion.
  pgas::ThreadTeam team(pgas::Topology{2, 2});
  Map map(team, Map::Config{.global_capacity = 256, .flush_threshold = 64});
  map.set_name("test.map");
  team.run([&](pgas::Rank& rank) {
    map.update_buffered(rank, static_cast<std::uint64_t>(rank.id()), 1);
    map.flush(rank);
    rank.barrier();
    EXPECT_TRUE(map.find(rank, static_cast<std::uint64_t>(rank.id())).has_value());
  });
  EXPECT_TRUE(violations().empty());
}

}  // namespace
}  // namespace hipmer
