#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "util/logging.hpp"

namespace hipmer::util {
namespace {

TEST(Logging, LevelFiltering) {
  auto& logger = Logger::instance();
  const auto old = logger.level();
  logger.set_level(LogLevel::kError);
  EXPECT_EQ(logger.level(), LogLevel::kError);
  // Below-threshold messages must be cheap no-ops (no way to observe the
  // stderr suppression portably; this exercises the paths for coverage
  // and thread safety under concurrent calls).
  log_debug("nope");
  log_info("nope");
  log_warn("nope");
  logger.set_level(old);
}

TEST(Logging, ConcurrentCallsDoNotRace) {
  auto& logger = Logger::instance();
  const auto old = logger.level();
  logger.set_level(LogLevel::kError);  // silent but still locks
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t)
    threads.emplace_back([] {
      for (int i = 0; i < 200; ++i) log_warn("spam " + std::to_string(i));
    });
  for (auto& t : threads) t.join();
  logger.set_level(old);
}

}  // namespace
}  // namespace hipmer::util
