// Assembly-as-a-service job server: control protocol framing, SUBMIT
// parsing, artifact cache integrity, job queue admission/scheduling, and
// end-to-end served assemblies over a live Unix socket — byte-identity
// against one-shot runs, cache hits skipping k-mer analysis, cancel and
// fault containment on the persistent team, and tenant checkpoint
// isolation.

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "io/fasta.hpp"
#include "io/fastq.hpp"
#include "pipeline/pipeline.hpp"
#include "server/artifact_cache.hpp"
#include "server/client.hpp"
#include "server/job_queue.hpp"
#include "server/job_server.hpp"
#include "server/protocol.hpp"
#include "sim/datasets.hpp"

namespace hipmer {
namespace {

namespace fs = std::filesystem;

fs::path fresh_dir(const std::string& tag) {
  const auto dir =
      fs::temp_directory_path() /
      ("hipmer_" + tag + "_" + std::to_string(std::random_device{}()));
  fs::create_directories(dir);
  return dir;
}

// ---- Protocol framing ----

TEST(Protocol, FrameRoundTrip) {
  for (const std::string text :
       {std::string("SUBMIT reads=a.fastq out=b.fasta"), std::string(""),
        std::string("END"), std::string("STATS queued=0")}) {
    // frame_line yields the wire form (trailing '\n'); unframe_line takes
    // the line as LineReader hands it back, newline stripped.
    std::string framed = server::frame_line(text);
    ASSERT_EQ(framed.back(), '\n');
    framed.pop_back();
    const auto back = server::unframe_line(framed);
    ASSERT_TRUE(back.has_value()) << text;
    EXPECT_EQ(*back, text);
  }
}

TEST(Protocol, CorruptionIsDetected) {
  std::string framed = server::frame_line("SUBMIT reads=a.fastq out=b.fasta");
  framed.pop_back();
  // Flip every byte in turn: each corruption must be rejected, never
  // mis-parsed.
  for (std::size_t i = 0; i < framed.size(); ++i) {
    std::string bad = framed;
    bad[i] = static_cast<char>(bad[i] ^ 0x20);
    EXPECT_FALSE(server::unframe_line(bad).has_value()) << "byte " << i;
  }
  EXPECT_FALSE(server::unframe_line("nonsense").has_value());
  EXPECT_FALSE(server::unframe_line("").has_value());
  EXPECT_FALSE(server::unframe_line("zzzzzzzz PING").has_value());
}

TEST(Protocol, ParseCommand) {
  const auto cmd =
      server::parse_command("SUBMIT reads=a.fastq:395 out=x.fasta priority=2");
  EXPECT_EQ(cmd.verb, "SUBMIT");
  EXPECT_EQ(cmd.get("reads"), "a.fastq:395");
  EXPECT_EQ(cmd.get("priority"), "2");
  EXPECT_EQ(cmd.get("absent", "fallback"), "fallback");
  EXPECT_TRUE(cmd.has("out"));
  EXPECT_FALSE(cmd.has("tenant"));
}

TEST(Protocol, ResponseField) {
  const std::string line = "JOB id=7 state=done cache_hit=1 out=x.fasta";
  EXPECT_EQ(server::response_field(line, "id"), "7");
  EXPECT_EQ(server::response_field(line, "state"), "done");
  EXPECT_EQ(server::response_field(line, "out"), "x.fasta");
  // "hit" must not match inside "cache_hit".
  EXPECT_EQ(server::response_field(line, "hit", "none"), "none");
  EXPECT_EQ(server::response_field(line, "missing", "none"), "none");
}

TEST(Protocol, LineReaderSplitsBufferedLines) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  const std::string wire = "aaa\nbbb\n\nccc\n";
  ASSERT_EQ(::write(fds[1], wire.data(), wire.size()),
            static_cast<ssize_t>(wire.size()));
  ::close(fds[1]);
  server::LineReader reader(fds[0]);
  const char* expected[] = {"aaa", "bbb", "", "ccc"};
  for (const auto* want : expected) {
    const auto line = reader.next();
    ASSERT_TRUE(line.has_value());
    EXPECT_EQ(*line, want);
  }
  // EOF; the stream held no further complete line.
  EXPECT_FALSE(reader.next().has_value());
  ::close(fds[0]);
}

TEST(Protocol, LineReaderDropsRunawayUnterminatedLine) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  // kMaxLineBytes of data with no newline: the reader must give up
  // rather than buffer without bound. (Exactly one pipe capacity, so the
  // write cannot block.)
  const std::string flood(server::kMaxLineBytes, 'x');
  ASSERT_EQ(::write(fds[1], flood.data(), flood.size()),
            static_cast<ssize_t>(flood.size()));
  server::LineReader reader(fds[0]);
  EXPECT_FALSE(reader.next().has_value());
  ::close(fds[1]);
  ::close(fds[0]);
}

TEST(Protocol, LineReaderIdleTimeout) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  // Writer stays open but sends nothing: without the timeout this would
  // block forever.
  server::LineReader reader(fds[0], /*idle_timeout_ms=*/150);
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(reader.next().has_value());
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(elapsed, std::chrono::seconds(5));
  ::close(fds[1]);
  ::close(fds[0]);
}

TEST(Protocol, LineReaderStopFlag) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  std::atomic<bool> stop{false};
  server::LineReader reader(fds[0], /*idle_timeout_ms=*/-1, &stop);
  std::thread trip([&stop] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    stop.store(true);
  });
  EXPECT_FALSE(reader.next().has_value());
  trip.join();
  ::close(fds[1]);
  ::close(fds[0]);
}

// ---- SUBMIT parsing ----

server::Command submit_cmd(const std::string& args) {
  return server::parse_command("SUBMIT " + args);
}

TEST(ParseSubmit, ValidationErrors) {
  const auto dir = fresh_dir("submit");
  const auto fastq = (dir / "reads.fastq").string();
  std::ofstream(fastq) << "@r/1\nACGT\n+\nIIII\n";

  server::JobSpec spec;
  std::string error;
  EXPECT_FALSE(server::JobServer::parse_submit(submit_cmd("out=x.fasta"),
                                               &spec, &error));
  EXPECT_EQ(error, "missing-reads");

  spec = {};
  EXPECT_FALSE(server::JobServer::parse_submit(
      submit_cmd("reads=/no/such/file.fastq out=x.fasta"), &spec, &error));
  EXPECT_EQ(error, "input-missing");

  spec = {};
  EXPECT_FALSE(server::JobServer::parse_submit(submit_cmd("reads=" + fastq),
                                               &spec, &error));
  EXPECT_EQ(error, "missing-out");

  spec = {};
  EXPECT_FALSE(server::JobServer::parse_submit(
      submit_cmd("reads=" + fastq + " out=x.fasta tenant=../evil"), &spec,
      &error));
  EXPECT_EQ(error, "bad-tenant");

  spec = {};
  EXPECT_FALSE(server::JobServer::parse_submit(
      submit_cmd("reads=" + fastq + " out=x.fasta k=3"), &spec, &error));
  EXPECT_EQ(error, "bad-config");

  fs::remove_all(dir);
}

TEST(ParseSubmit, KillSpecValidation) {
  const auto dir = fresh_dir("submitkill");
  const auto fastq = (dir / "reads.fastq").string();
  std::ofstream(fastq) << "@r/1\nACGT\n+\nIIII\n";
  const std::string base = "reads=" + fastq + " out=x.fasta ";

  // A soft (throwing) kill is a legitimate per-job chaos rider.
  server::JobSpec spec;
  std::string error;
  EXPECT_TRUE(server::JobServer::parse_submit(
      submit_cmd(base + "kill=1@contig_generation"), &spec, &error))
      << error;
  EXPECT_EQ(spec.kill_spec, "1@contig_generation");

  // A hard kill would SIGKILL the whole server process, not the job:
  // reject it at the door.
  spec = {};
  EXPECT_FALSE(server::JobServer::parse_submit(
      submit_cmd(base + "kill=1@contig_generation,hard"), &spec, &error));
  EXPECT_EQ(error, "bad-kill");

  // A malformed spec is rejected at submit, not at execute.
  spec = {};
  EXPECT_FALSE(server::JobServer::parse_submit(
      submit_cmd(base + "kill=nonsense"), &spec, &error));
  EXPECT_EQ(error, "bad-kill");
  fs::remove_all(dir);
}

TEST(ParseSubmit, LibrariesAndOptions) {
  const auto dir = fresh_dir("submit2");
  const auto pe = (dir / "pe.fastq").string();
  const auto mp = (dir / "mp.fastq").string();
  std::ofstream(pe) << "@r/1\nACGT\n+\nIIII\n";
  std::ofstream(mp) << "@r/1\nACGTACGT\n+\nIIIIIIII\n";

  server::JobSpec spec;
  std::string error;
  ASSERT_TRUE(server::JobServer::parse_submit(
      submit_cmd("reads=" + pe + ":395," + mp +
                 ":4200:s out=x.fasta tenant=acme priority=3 k=25 "
                 "min_count=3 rounds=2 diploid=1 cache=0"),
      &spec, &error))
      << error;
  ASSERT_EQ(spec.libraries.size(), 2u);
  EXPECT_EQ(spec.libraries[0].name, "lib0");
  EXPECT_DOUBLE_EQ(spec.libraries[0].mean_insert, 395.0);
  EXPECT_TRUE(spec.libraries[0].for_contigging);
  EXPECT_EQ(spec.libraries[1].name, "lib1");
  EXPECT_DOUBLE_EQ(spec.libraries[1].mean_insert, 4200.0);
  EXPECT_FALSE(spec.libraries[1].for_contigging);
  EXPECT_EQ(spec.tenant, "acme");
  EXPECT_EQ(spec.priority, 3);
  EXPECT_EQ(spec.k, 25);
  EXPECT_EQ(spec.min_count, 3u);
  EXPECT_EQ(spec.rounds, 2);
  EXPECT_TRUE(spec.diploid);
  EXPECT_FALSE(spec.use_cache);
  // Admission estimate is the summed input size.
  EXPECT_EQ(spec.estimated_bytes, fs::file_size(pe) + fs::file_size(mp));
  fs::remove_all(dir);
}

// ---- Artifact cache ----

TEST(ArtifactCache, StoreLookupRoundTrip) {
  const auto dir = fresh_dir("cache");
  server::ArtifactCache cache(dir);

  std::vector<std::vector<std::byte>> shards(3);
  for (std::size_t s = 0; s < shards.size(); ++s)
    for (int i = 0; i < 64; ++i)
      shards[s].push_back(static_cast<std::byte>(s * 64 + i));
  ckpt::AuxStats aux;
  aux.distinct_kmers = 1234;
  aux.singleton_fraction = 0.25;
  aux.heavy_hitters = 7;

  EXPECT_FALSE(cache.lookup_ufx(42).has_value());
  EXPECT_EQ(cache.misses(), 1u);

  ASSERT_TRUE(cache.store_ufx(42, shards, aux));
  const auto hit = cache.lookup_ufx(42);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->shards, shards);
  EXPECT_EQ(hit->aux.distinct_kmers, 1234u);
  EXPECT_DOUBLE_EQ(hit->aux.singleton_fraction, 0.25);
  EXPECT_EQ(hit->aux.heavy_hitters, 7u);
  EXPECT_EQ(cache.hits(), 1u);

  // A different key still misses.
  EXPECT_FALSE(cache.lookup_ufx(43).has_value());
  fs::remove_all(dir);
}

TEST(ArtifactCache, CorruptEntryIsAMissAndIsEvicted) {
  const auto dir = fresh_dir("cachecorrupt");
  server::ArtifactCache cache(dir);
  std::vector<std::vector<std::byte>> shards{
      {std::byte{1}, std::byte{2}, std::byte{3}}};
  ASSERT_TRUE(cache.store_ufx(9, shards, ckpt::AuxStats{}));

  // Flip a byte in the stored shard: lookup must reject the entry and
  // remove it so a later store can repopulate.
  fs::path shard_file;
  for (const auto& entry : fs::recursive_directory_iterator(dir))
    if (entry.path().filename() == "ufx.0") shard_file = entry.path();
  ASSERT_FALSE(shard_file.empty());
  {
    std::fstream f(shard_file, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(1);
    f.put('\x7f');
  }
  EXPECT_FALSE(cache.lookup_ufx(9).has_value());
  EXPECT_FALSE(fs::exists(shard_file.parent_path()));

  // Repopulate after eviction works.
  ASSERT_TRUE(cache.store_ufx(9, shards, ckpt::AuxStats{}));
  EXPECT_TRUE(cache.lookup_ufx(9).has_value());
  fs::remove_all(dir);
}

TEST(ArtifactCache, TornStoreIsAnOrdinaryMiss) {
  const auto dir = fresh_dir("cachetorn");
  server::ArtifactCache cache(dir);
  std::vector<std::vector<std::byte>> shards{{std::byte{5}}};
  ASSERT_TRUE(cache.store_ufx(11, shards, ckpt::AuxStats{}));
  // Simulate a torn store: shards landed but meta.bin (the commit point)
  // did not.
  fs::path meta;
  for (const auto& entry : fs::recursive_directory_iterator(dir))
    if (entry.path().filename() == "meta.bin") meta = entry.path();
  ASSERT_FALSE(meta.empty());
  fs::remove(meta);
  EXPECT_FALSE(cache.lookup_ufx(11).has_value());
  fs::remove_all(dir);
}

// ---- Job queue ----

server::JobSpec spec_bytes(std::uint64_t bytes, int priority = 0) {
  server::JobSpec spec;
  spec.estimated_bytes = bytes;
  spec.priority = priority;
  spec.output_path = "out.fasta";
  return spec;
}

TEST(JobQueue, AdmissionControl) {
  server::AdmissionConfig admission;
  admission.max_queued = 2;
  admission.max_resident_bytes = 1000;
  server::JobQueue queue(admission);
  std::string error;

  EXPECT_NE(queue.submit(spec_bytes(400), &error), 0u);
  EXPECT_NE(queue.submit(spec_bytes(400), &error), 0u);
  // Queue depth cap.
  EXPECT_EQ(queue.submit(spec_bytes(1), &error), 0u);
  EXPECT_EQ(error, "queue-full");

  // Memory budget cap: pop one (it stays resident as running), so depth
  // allows another but 400+400+300 would bust the byte budget.
  auto* running = queue.pop_next();
  ASSERT_NE(running, nullptr);
  EXPECT_EQ(queue.submit(spec_bytes(300), &error), 0u);
  EXPECT_EQ(error, "memory-budget");
  EXPECT_NE(queue.submit(spec_bytes(200), &error), 0u);

  // Finishing a job releases its estimate; popping one of the two queued
  // jobs frees a queue slot, so a 300-byte job now fits both budgets.
  queue.finish(running, server::JobState::kDone, {});
  auto* next = queue.pop_next();
  ASSERT_NE(next, nullptr);
  EXPECT_NE(queue.submit(spec_bytes(300), &error), 0u);
  queue.finish(next, server::JobState::kDone, {});
  queue.shutdown();
}

TEST(JobQueue, PriorityThenFifoOrder) {
  server::JobQueue queue(server::AdmissionConfig{});
  std::string error;
  const auto a = queue.submit(spec_bytes(1, 0), &error);
  const auto b = queue.submit(spec_bytes(1, 5), &error);
  const auto c = queue.submit(spec_bytes(1, 5), &error);
  const auto d = queue.submit(spec_bytes(1, 1), &error);
  ASSERT_TRUE(a && b && c && d);

  // Dispatch: priority desc, FIFO within priority.
  const std::uint64_t expected[] = {b, c, d, a};
  for (const auto id : expected) {
    auto* job = queue.pop_next();
    ASSERT_NE(job, nullptr);
    EXPECT_EQ(job->spec.id, id);
    queue.finish(job, server::JobState::kDone, {});
  }
  queue.shutdown();
  EXPECT_EQ(queue.pop_next(), nullptr);
}

TEST(JobQueue, CancelSemantics) {
  server::JobQueue queue(server::AdmissionConfig{});
  std::string error;
  const auto a = queue.submit(spec_bytes(1), &error);
  const auto b = queue.submit(spec_bytes(1), &error);
  ASSERT_TRUE(a && b);

  auto* running = queue.pop_next();
  ASSERT_EQ(running->spec.id, a);

  // Cancelling a queued job is immediate.
  EXPECT_TRUE(queue.cancel(b));
  EXPECT_EQ(queue.status(b)->state, server::JobState::kCancelled);
  // Cancelling it again (terminal) fails, as does an unknown id.
  EXPECT_FALSE(queue.cancel(b));
  EXPECT_FALSE(queue.cancel(999));

  // Cancelling the running job only raises the flag; the executor lands
  // the terminal state.
  EXPECT_TRUE(queue.cancel(a));
  EXPECT_EQ(queue.status(a)->state, server::JobState::kRunning);
  EXPECT_TRUE(running->cancel_requested.load());
  queue.finish(running, server::JobState::kCancelled, {});
  EXPECT_EQ(queue.status(a)->state, server::JobState::kCancelled);

  const auto counters = queue.counters();
  EXPECT_EQ(counters.cancelled, 2u);
  queue.shutdown();
}

TEST(JobQueue, TerminalHistoryIsCappedPerTenant) {
  server::AdmissionConfig admission;
  admission.max_retained_terminal = 2;
  server::JobQueue queue(admission);
  std::string error;

  auto run_one = [&](const std::string& tenant) {
    auto spec = spec_bytes(1);
    spec.tenant = tenant;
    const auto id = queue.submit(std::move(spec), &error);
    EXPECT_NE(id, 0u) << error;
    auto* job = queue.pop_next();
    EXPECT_EQ(job->spec.id, id);
    queue.finish(job, server::JobState::kDone, {});
    return id;
  };

  std::vector<std::uint64_t> alice;
  for (int i = 0; i < 4; ++i) alice.push_back(run_one("alice"));
  const auto bob = run_one("bob");

  // Alice keeps only her newest two records; bob's history is untouched
  // by her eviction.
  EXPECT_FALSE(queue.status(alice[0]).has_value());
  EXPECT_FALSE(queue.status(alice[1]).has_value());
  EXPECT_TRUE(queue.status(alice[2]).has_value());
  EXPECT_TRUE(queue.status(alice[3]).has_value());
  EXPECT_TRUE(queue.status(bob).has_value());

  // Totals survive eviction — counters are accumulated, not rescanned.
  EXPECT_EQ(queue.counters().completed, 5u);
  queue.shutdown();
}

TEST(JobQueue, ShutdownStopsDispatchWithoutDrainingBacklog) {
  server::JobQueue queue(server::AdmissionConfig{});
  std::string error;
  ASSERT_NE(queue.submit(spec_bytes(1), &error), 0u);
  queue.shutdown();
  // SHUTDOWN means stop dispatching, not run the backlog to completion.
  EXPECT_EQ(queue.pop_next(), nullptr);
  // Post-shutdown submissions are rejected.
  EXPECT_EQ(queue.submit(spec_bytes(1), &error), 0u);
  EXPECT_EQ(error, "shutting-down");
}

// ---- End-to-end over a live socket ----

/// A live server over a simulated dataset written to FASTQ, plus a
/// one-shot reference pipeline result for byte-identity checks.
class ServedAssembly : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    state_ = new SuiteState;
    state_->dir = fresh_dir("served");
    auto ds = sim::make_human_like(20000, 4242, 15.0);
    state_->fastq = (state_->dir / "reads.fastq").string();
    ASSERT_TRUE(io::write_fastq(state_->fastq, ds.reads[0]));
    state_->insert = ds.libraries[0].mean_insert;

    // One-shot reference: the exact config a plain `SUBMIT k=25
    // min_count=3` maps to.
    pipeline::PipelineConfig cfg;
    cfg.k = 25;
    cfg.kmer.min_count = 3;
    cfg.merge_bubbles = false;
    cfg.sync_k();
    pipeline::Pipeline reference(pgas::Topology{4, 4}, cfg);
    // Mirror exactly what a SUBMIT line transmits: lib0 naming, the mean
    // insert, and no stddev (the protocol does not carry one).
    auto libs = ds.libraries;
    libs[0].name = "lib0";
    libs[0].fastq_path = state_->fastq;
    libs[0].stddev_insert = 0.0;
    state_->expected = reference.run_from_fastq(libs).scaffolds;
    ASSERT_FALSE(state_->expected.empty());

    server::ServerConfig sc;
    sc.listen_path = (state_->dir / "ctl.sock").string();
    sc.ranks = 4;
    sc.cores = 4;
    sc.state_dir = (state_->dir / "state").string();
    sc.keep_last = 1;
    state_->server = std::make_unique<server::JobServer>(sc);
    state_->thread = std::thread([] { (void)state_->server->serve(); });
  }

  static void TearDownTestSuite() {
    (void)request("SHUTDOWN");
    state_->thread.join();
    state_->server.reset();
    fs::remove_all(state_->dir);
    delete state_;
    state_ = nullptr;
  }

  static std::optional<server::Response> request(const std::string& command) {
    return server::request_with_retry((state_->dir / "ctl.sock").string(),
                                      command, 100, 50);
  }

  /// SUBMIT and return the job id (0 on rejection).
  static std::uint64_t submit(const std::string& args) {
    const auto resp = request("SUBMIT " + args);
    if (!resp || !resp->ok()) return 0;
    return std::strtoull(
        server::response_field(resp->first(), "id", "0").c_str(), nullptr, 10);
  }

  /// Poll STATUS until the job reaches a terminal state.
  static std::string await(std::uint64_t id) {
    for (int i = 0; i < 3000; ++i) {
      const auto resp = request("STATUS id=" + std::to_string(id));
      if (!resp || !resp->ok()) return "protocol-error";
      const auto state = server::response_field(resp->first(), "state");
      if (state == "done" || state == "failed" || state == "cancelled" ||
          state == "quarantined")
        return state;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return "timeout";
  }

  /// Stage names from the RESULT reply, in execution order.
  static std::vector<std::string> stages(std::uint64_t id) {
    std::vector<std::string> names;
    const auto resp = request("RESULT id=" + std::to_string(id));
    if (!resp) return names;
    for (const auto& line : resp->lines)
      if (line.rfind("STAGE ", 0) == 0) {
        const auto rest = line.substr(6);
        names.push_back(rest.substr(0, rest.find(' ')));
      }
    return names;
  }

  static std::string submit_args(const std::string& out,
                                 const std::string& extra = "") {
    char insert[32];
    std::snprintf(insert, sizeof insert, "%g", state_->insert);
    return "reads=" + state_->fastq + ":" + insert + " out=" +
           (state_->dir / out).string() + " k=25 min_count=3" +
           (extra.empty() ? "" : " " + extra);
  }

  static void expect_matches_reference(const std::string& out) {
    const auto got = io::read_fasta((state_->dir / out).string());
    ASSERT_EQ(got.size(), state_->expected.size()) << out;
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].name, state_->expected[i].name) << out << " " << i;
      EXPECT_EQ(got[i].seq, state_->expected[i].seq) << out << " " << i;
    }
  }

  struct SuiteState {
    fs::path dir;
    std::string fastq;
    double insert = 0.0;
    std::vector<io::FastaRecord> expected;
    std::unique_ptr<server::JobServer> server;
    std::thread thread;
  };
  static SuiteState* state_;
};

ServedAssembly::SuiteState* ServedAssembly::state_ = nullptr;

bool has_stage(const std::vector<std::string>& names, const std::string& s) {
  return std::find(names.begin(), names.end(), s) != names.end();
}

TEST_F(ServedAssembly, SequentialJobsMatchOneShotAndSecondHitsCache) {
  // Job 1: cold — computes k-mer analysis and populates the cache.
  const auto j1 = submit(submit_args("served1.fasta"));
  ASSERT_NE(j1, 0u);
  ASSERT_EQ(await(j1), "done");
  expect_matches_reference("served1.fasta");
  EXPECT_TRUE(has_stage(stages(j1), pipeline::kStageKmerAnalysis));

  // Job 2: identical (input, config) — the cache hit skips k-mer analysis
  // entirely, and the output is still byte-identical.
  const auto j2 = submit(submit_args("served2.fasta"));
  ASSERT_NE(j2, 0u);
  ASSERT_EQ(await(j2), "done");
  expect_matches_reference("served2.fasta");
  const auto result = request("RESULT id=" + std::to_string(j2));
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(server::response_field(result->first(), "cache_hit"), "1");
  EXPECT_FALSE(has_stage(stages(j2), pipeline::kStageKmerAnalysis));

  // Job 3: different config (k) — a different artifact key, so k-mer
  // analysis runs again.
  const auto j3 = submit("reads=" + state_->fastq + " out=" +
                         (state_->dir / "served3.fasta").string() +
                         " k=31 min_count=3");
  ASSERT_NE(j3, 0u);
  ASSERT_EQ(await(j3), "done");
  EXPECT_TRUE(has_stage(stages(j3), pipeline::kStageKmerAnalysis));

  const auto stats = request("STATS");
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(server::response_field(stats->first(), "cache_hits"), "1");
}

TEST_F(ServedAssembly, ConcurrentlyQueuedJobsAllComplete) {
  // Submit three jobs back-to-back without waiting: one runs, two queue.
  const auto a = submit(submit_args("conc_a.fasta"));
  const auto b = submit(submit_args("conc_b.fasta"));
  const auto c = submit(submit_args("conc_c.fasta"));
  ASSERT_TRUE(a && b && c);
  EXPECT_EQ(await(a), "done");
  EXPECT_EQ(await(b), "done");
  EXPECT_EQ(await(c), "done");
  expect_matches_reference("conc_a.fasta");
  expect_matches_reference("conc_b.fasta");
  expect_matches_reference("conc_c.fasta");
}

TEST_F(ServedAssembly, CancelQueuedAndRunningLeavesTeamReusable) {
  // A long job (several scaffolding rounds) pins the executor while we
  // cancel the job queued behind it — that cancel is deterministic.
  const auto running = submit(submit_args("cancel_run.fasta", "rounds=3"));
  const auto queued = submit(submit_args("cancel_q.fasta"));
  ASSERT_TRUE(running && queued);
  const auto cancel = request("CANCEL id=" + std::to_string(queued));
  ASSERT_TRUE(cancel.has_value());
  EXPECT_TRUE(cancel->ok());
  EXPECT_EQ(await(queued), "cancelled");
  EXPECT_FALSE(fs::exists(state_->dir / "cancel_q.fasta"));

  // Cancel the running job mid-stage; the pipeline aborts at the next
  // stage boundary without wounding the team.
  EXPECT_TRUE(request("CANCEL id=" + std::to_string(running))->ok());
  const auto state = await(running);
  // The race is real: the job may finish before the poll lands. Either
  // way the team must serve the next job.
  EXPECT_TRUE(state == "cancelled" || state == "done") << state;

  const auto next = submit(submit_args("after_cancel.fasta"));
  ASSERT_NE(next, 0u);
  ASSERT_EQ(await(next), "done");
  expect_matches_reference("after_cancel.fasta");
}

TEST_F(ServedAssembly, KilledJobQuarantinedAloneNextJobUnaffected) {
  // An injected rank-kill mid-assembly fails every attempt of this job:
  // the retry policy burns its budget (attempts=2 to keep the test fast)
  // and quarantines the poison job with its accumulated fault record.
  const auto doomed = submit(submit_args(
      "killed.fasta", "kill=1@contig_generation tenant=chaos attempts=2"));
  ASSERT_NE(doomed, 0u);
  ASSERT_EQ(await(doomed), "quarantined");
  const auto status = request("STATUS id=" + std::to_string(doomed));
  ASSERT_TRUE(status.has_value());
  const auto error = server::response_field(status->first(), "error");
  EXPECT_NE(error.find("killed"), std::string::npos) << error;
  // The fault record names each failed attempt.
  EXPECT_NE(error.find("attempt"), std::string::npos) << error;
  EXPECT_EQ(server::response_field(status->first(), "attempts"), "2");

  // A job under a pinned lossy-chaos plan still completes correctly (the
  // delivery protocol hides the losses), and so does a clean job after.
  const auto chaotic = submit(
      submit_args("chaotic.fasta", "chaos=drop=0.02,dup=0.01 chaos_seed=7"));
  ASSERT_NE(chaotic, 0u);
  ASSERT_EQ(await(chaotic), "done");
  expect_matches_reference("chaotic.fasta");

  const auto clean = submit(submit_args("after_kill.fasta"));
  ASSERT_NE(clean, 0u);
  ASSERT_EQ(await(clean), "done");
  expect_matches_reference("after_kill.fasta");
}

TEST_F(ServedAssembly, DeadlineExpiredBeforeDispatchFailsWithoutRunning) {
  // Job A pins the executor; job B's 1 ms wall-clock deadline expires
  // while it waits in the queue, so dispatch fails it without running a
  // single stage — and without charging a retry.
  const auto pinning = submit(submit_args("dl_pin.fasta", "rounds=3"));
  const auto doomed = submit(submit_args("dl_late.fasta", "deadline=1"));
  ASSERT_TRUE(pinning && doomed);
  ASSERT_EQ(await(doomed), "failed");
  const auto status = request("STATUS id=" + std::to_string(doomed));
  ASSERT_TRUE(status.has_value());
  EXPECT_NE(
      server::response_field(status->first(), "error").find("deadline"),
      std::string::npos);
  EXPECT_FALSE(fs::exists(state_->dir / "dl_late.fasta"));
  EXPECT_TRUE(stages(doomed).empty());
  EXPECT_EQ(await(pinning), "done");
}

TEST_F(ServedAssembly, TenantCheckpointsStayIsolated) {
  // Interleaved jobs from two tenants, keep_last=1: each tenant's
  // checkpoints live in its own directory, so neither prunes the other
  // and each can resume from its own snapshots.
  const auto a1 = submit(submit_args("tenant_a1.fasta", "tenant=alice"));
  ASSERT_EQ(await(a1), "done");
  const auto b1 = submit(submit_args("tenant_b1.fasta", "tenant=bob"));
  ASSERT_EQ(await(b1), "done");

  const auto state_dir = state_->dir / "state" / "tenants";
  EXPECT_TRUE(fs::exists(state_dir / "alice"));
  EXPECT_TRUE(fs::exists(state_dir / "bob"));

  // resume=1 restarts each tenant's job from its own snapshots: the
  // k-mer analysis stage is loaded, not recomputed (and no cache is
  // consulted — resume goes through the checkpoint subsystem).
  const auto a2 = submit(
      submit_args("tenant_a2.fasta", "tenant=alice resume=1 cache=0"));
  ASSERT_EQ(await(a2), "done");
  expect_matches_reference("tenant_a2.fasta");
  EXPECT_FALSE(has_stage(stages(a2), pipeline::kStageKmerAnalysis));
  const auto b2 =
      submit(submit_args("tenant_b2.fasta", "tenant=bob resume=1 cache=0"));
  ASSERT_EQ(await(b2), "done");
  expect_matches_reference("tenant_b2.fasta");
  EXPECT_FALSE(has_stage(stages(b2), pipeline::kStageKmerAnalysis));
}

TEST_F(ServedAssembly, InPlaceRewriteSameSizeMissesCache) {
  // A dataset rewritten in place with unchanged size must not hit the
  // cache: serving the old data's artifacts would be silent corruption.
  const auto mut = (state_->dir / "mut.fastq").string();
  fs::copy_file(state_->fastq, mut, fs::copy_options::overwrite_existing);
  const std::string args = "reads=" + mut + " out=" +
                           (state_->dir / "mut1.fasta").string() +
                           " k=25 min_count=3";
  const auto cold = submit(args);
  ASSERT_NE(cold, 0u);
  ASSERT_EQ(await(cold), "done");
  EXPECT_TRUE(has_stage(stages(cold), pipeline::kStageKmerAnalysis));

  // Same path, same size, new mtime — only the write time distinguishes
  // the "rewritten" file from the cached generation.
  fs::last_write_time(mut, fs::last_write_time(mut) + std::chrono::seconds(2));
  const auto resub = submit("reads=" + mut + " out=" +
                            (state_->dir / "mut2.fasta").string() +
                            " k=25 min_count=3");
  ASSERT_NE(resub, 0u);
  ASSERT_EQ(await(resub), "done");
  const auto result = request("RESULT id=" + std::to_string(resub));
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(server::response_field(result->first(), "cache_hit"), "0");
  EXPECT_TRUE(has_stage(stages(resub), pipeline::kStageKmerAnalysis));
}

TEST_F(ServedAssembly, IdleClientDoesNotBlockControlPlane) {
  // A client that connects and sends nothing must not wedge the control
  // plane for everyone else. Wait for the listener first: the raw connect
  // below has no retry, and the server binds its socket only after journal
  // recovery.
  {
    const auto ready = request("PING");
    ASSERT_TRUE(ready.has_value());
    ASSERT_TRUE(ready->ok());
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  const auto sock_path = (state_->dir / "ctl.sock").string();
  ASSERT_LT(sock_path.size(), sizeof addr.sun_path);
  std::strncpy(addr.sun_path, sock_path.c_str(), sizeof addr.sun_path - 1);
  const int idle_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(idle_fd, 0);
  ASSERT_EQ(::connect(idle_fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof addr),
            0);

  // With the idler parked mid-connection, a second connection still gets
  // answered (well before the idler's 10s server-side timeout).
  const auto ping = request("PING");
  ASSERT_TRUE(ping.has_value());
  EXPECT_TRUE(ping->ok());
  ::close(idle_fd);
}

TEST_F(ServedAssembly, ProtocolErrorsOverTheWire) {
  const auto bad = request("SUBMIT out=x.fasta");
  ASSERT_TRUE(bad.has_value());
  EXPECT_FALSE(bad->ok());
  EXPECT_EQ(bad->first(), "ERR missing-reads");

  // Hard kills are refused at the door — on the in-process team they
  // would take down the whole server, not the job.
  const auto hard =
      request("SUBMIT " +
              submit_args("hard.fasta", "kill=1@contig_generation,hard"));
  ASSERT_TRUE(hard.has_value());
  EXPECT_FALSE(hard->ok());
  EXPECT_EQ(hard->first(), "ERR bad-kill");

  const auto unknown = request("FROBNICATE x=1");
  ASSERT_TRUE(unknown.has_value());
  EXPECT_FALSE(unknown->ok());

  const auto missing = request("STATUS id=424242");
  ASSERT_TRUE(missing.has_value());
  EXPECT_FALSE(missing->ok());

  const auto ping = request("PING");
  ASSERT_TRUE(ping.has_value());
  EXPECT_TRUE(ping->ok());
}

}  // namespace
}  // namespace hipmer
