#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <random>

#include "io/fastq.hpp"
#include "io/seqdb.hpp"
#include "kcount/histogram.hpp"
#include "pgas/thread_team.hpp"
#include "sim/genome_sim.hpp"

namespace hipmer::io {
namespace {

namespace fs = std::filesystem;

class SeqdbFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("hipmer_seqdb_" + std::to_string(std::random_device{}()));
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }
  [[nodiscard]] std::string file(const std::string& name) const {
    return (dir_ / name).string();
  }
  fs::path dir_;
};

std::vector<seq::Read> sample_reads(int n, std::uint64_t seed,
                                    bool with_ns = false) {
  std::mt19937_64 rng(seed);
  std::vector<seq::Read> reads;
  for (int i = 0; i < n; ++i) {
    seq::Read r;
    r.name = "lib:" + std::to_string(i) + "/" + std::to_string(i % 2);
    r.seq = sim::random_dna(50 + rng() % 150, rng);
    if (with_ns && i % 7 == 0) r.seq[r.seq.size() / 2] = 'N';
    r.quals.resize(r.seq.size());
    for (auto& q : r.quals) q = seq::phred_to_char(static_cast<int>(rng() % 40) + 2);
    reads.push_back(std::move(r));
  }
  return reads;
}

TEST_F(SeqdbFixture, RoundTripExact) {
  const auto reads = sample_reads(3000, 11);
  const auto path = file("a.sdb");
  ASSERT_TRUE(write_seqdb(path, reads));
  const auto back = read_seqdb(path);
  ASSERT_EQ(back.size(), reads.size());
  for (std::size_t i = 0; i < reads.size(); ++i) {
    EXPECT_EQ(back[i].name, reads[i].name);
    EXPECT_EQ(back[i].seq, reads[i].seq);
    EXPECT_EQ(back[i].quals, reads[i].quals);
  }
}

TEST_F(SeqdbFixture, RoundTripWithAmbiguousBases) {
  const auto reads = sample_reads(500, 13, /*with_ns=*/true);
  const auto path = file("n.sdb");
  ASSERT_TRUE(write_seqdb(path, reads));
  const auto back = read_seqdb(path);
  ASSERT_EQ(back.size(), reads.size());
  for (std::size_t i = 0; i < reads.size(); ++i)
    EXPECT_EQ(back[i].seq, reads[i].seq);
}

TEST_F(SeqdbFixture, SmallerThanFastq) {
  const auto reads = sample_reads(5000, 17);
  const auto sdb = file("c.sdb");
  const auto fq = file("c.fastq");
  ASSERT_TRUE(write_seqdb(sdb, reads));
  ASSERT_TRUE(write_fastq(fq, reads));
  EXPECT_LT(fs::file_size(sdb), fs::file_size(fq) * 8 / 10)
      << "2-bit packing should beat FASTQ by well over 20%";
}

class SeqdbParallel : public ::testing::TestWithParam<int> {};

TEST_P(SeqdbParallel, UnionOverRanksIsExactlyTheFile) {
  const int nranks = GetParam();
  const auto dir = fs::temp_directory_path() /
                   ("hipmer_psdb_" + std::to_string(std::random_device{}()));
  fs::create_directories(dir);
  const auto reads = sample_reads(4321, 19);
  const auto path = (dir / "p.sdb").string();
  ASSERT_TRUE(write_seqdb(path, reads));

  pgas::ThreadTeam team(pgas::Topology{nranks, 2});
  ParallelSeqdbReader reader(path);
  EXPECT_EQ(reader.num_records(), reads.size());
  std::vector<std::vector<seq::Read>> by_rank(static_cast<std::size_t>(nranks));
  team.run([&](pgas::Rank& rank) {
    by_rank[static_cast<std::size_t>(rank.id())] = reader.read_my_records(rank);
  });
  std::vector<seq::Read> combined;
  for (const auto& part : by_rank)
    combined.insert(combined.end(), part.begin(), part.end());
  ASSERT_EQ(combined.size(), reads.size());
  for (std::size_t i = 0; i < reads.size(); ++i) {
    EXPECT_EQ(combined[i].name, reads[i].name) << i;
    EXPECT_EQ(combined[i].seq, reads[i].seq) << i;
  }
  fs::remove_all(dir);
}

INSTANTIATE_TEST_SUITE_P(Ranks, SeqdbParallel, ::testing::Values(1, 2, 3, 7, 16));

TEST_F(SeqdbFixture, RejectsCorruptMagic) {
  const auto path = file("bad.sdb");
  std::ofstream out(path, std::ios::binary);
  out << "this is not a seqdb file at all, padding padding padding";
  out.close();
  EXPECT_THROW(read_seqdb(path), std::runtime_error);
  EXPECT_THROW(ParallelSeqdbReader reader(path), std::runtime_error);
}

TEST_F(SeqdbFixture, RejectsTruncatedFile) {
  const auto reads = sample_reads(2000, 23);
  const auto path = file("t.sdb");
  ASSERT_TRUE(write_seqdb(path, reads));
  // Chop the footer off.
  const auto size = fs::file_size(path);
  fs::resize_file(path, size - 24);
  EXPECT_THROW(ParallelSeqdbReader reader(path), std::runtime_error);
}

TEST_F(SeqdbFixture, EmptyContainer) {
  const auto path = file("e.sdb");
  ASSERT_TRUE(write_seqdb(path, {}));
  EXPECT_TRUE(read_seqdb(path).empty());
  pgas::ThreadTeam team(pgas::Topology{2, 2});
  ParallelSeqdbReader reader(path);
  std::atomic<std::size_t> total{0};
  team.run([&](pgas::Rank& rank) {
    total += reader.read_my_records(rank).size();
  });
  EXPECT_EQ(total.load(), 0u);
}

}  // namespace
}  // namespace hipmer::io

namespace hipmer::kcount {
namespace {

TEST(Histogram, FindsValleyInBimodalSpectrum) {
  // Error spike decaying from count 1, coverage hump around 20.
  std::vector<std::uint64_t> hist(64, 0);
  const std::uint64_t errors[] = {0, 100000, 20000, 4000, 900, 300, 120, 60};
  for (std::size_t c = 1; c < 8; ++c) hist[c] = errors[c];
  for (int c = 8; c < 40; ++c) {
    const double d = (c - 20.0) / 5.0;
    hist[static_cast<std::size_t>(c)] +=
        static_cast<std::uint64_t>(50000.0 * std::exp(-d * d));
  }
  const auto cutoff = choose_min_count(hist);
  EXPECT_GE(cutoff, 4u);
  EXPECT_LE(cutoff, 10u);
  EXPECT_NEAR(estimate_kmer_depth(hist, cutoff), 20u, 2u);
}

TEST(Histogram, FlatSpectrumFallsBack) {
  std::vector<std::uint64_t> hist(64, 1000);  // metagenome-like: flat
  EXPECT_EQ(choose_min_count(hist, 2), 2u);
  EXPECT_EQ(choose_min_count({}, 5), 5u);
}

TEST(Histogram, MonotoneDecreasingFallsBack) {
  // Pure error spectrum with no coverage hump at all.
  std::vector<std::uint64_t> hist(64, 0);
  for (std::size_t c = 1; c < 64; ++c) hist[c] = 1'000'000 / (c * c * c);
  EXPECT_EQ(choose_min_count(hist, 3), 3u);
}

}  // namespace
}  // namespace hipmer::kcount
