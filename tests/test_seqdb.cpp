#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <random>

#include "io/fastq.hpp"
#include "io/seqdb.hpp"
#include "kcount/histogram.hpp"
#include "pgas/thread_team.hpp"
#include "sim/genome_sim.hpp"

namespace hipmer::io {
namespace {

namespace fs = std::filesystem;

class SeqdbFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("hipmer_seqdb_" + std::to_string(std::random_device{}()));
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }
  [[nodiscard]] std::string file(const std::string& name) const {
    return (dir_ / name).string();
  }
  fs::path dir_;
};

std::vector<seq::Read> sample_reads(int n, std::uint64_t seed,
                                    bool with_ns = false) {
  std::mt19937_64 rng(seed);
  std::vector<seq::Read> reads;
  for (int i = 0; i < n; ++i) {
    seq::Read r;
    r.name = "lib:" + std::to_string(i) + "/" + std::to_string(i % 2);
    r.seq = sim::random_dna(50 + rng() % 150, rng);
    if (with_ns && i % 7 == 0) r.seq[r.seq.size() / 2] = 'N';
    r.quals.resize(r.seq.size());
    for (auto& q : r.quals) q = seq::phred_to_char(static_cast<int>(rng() % 40) + 2);
    reads.push_back(std::move(r));
  }
  return reads;
}

TEST_F(SeqdbFixture, RoundTripExact) {
  const auto reads = sample_reads(3000, 11);
  const auto path = file("a.sdb");
  ASSERT_TRUE(write_seqdb(path, reads));
  const auto back = read_seqdb(path);
  ASSERT_EQ(back.size(), reads.size());
  for (std::size_t i = 0; i < reads.size(); ++i) {
    EXPECT_EQ(back[i].name, reads[i].name);
    EXPECT_EQ(back[i].seq, reads[i].seq);
    EXPECT_EQ(back[i].quals, reads[i].quals);
  }
}

TEST_F(SeqdbFixture, RoundTripWithAmbiguousBases) {
  const auto reads = sample_reads(500, 13, /*with_ns=*/true);
  const auto path = file("n.sdb");
  ASSERT_TRUE(write_seqdb(path, reads));
  const auto back = read_seqdb(path);
  ASSERT_EQ(back.size(), reads.size());
  for (std::size_t i = 0; i < reads.size(); ++i)
    EXPECT_EQ(back[i].seq, reads[i].seq);
}

TEST_F(SeqdbFixture, SmallerThanFastq) {
  const auto reads = sample_reads(5000, 17);
  const auto sdb = file("c.sdb");
  const auto fq = file("c.fastq");
  ASSERT_TRUE(write_seqdb(sdb, reads));
  ASSERT_TRUE(write_fastq(fq, reads));
  EXPECT_LT(fs::file_size(sdb), fs::file_size(fq) * 8 / 10)
      << "2-bit packing should beat FASTQ by well over 20%";
}

class SeqdbParallel : public ::testing::TestWithParam<int> {};

TEST_P(SeqdbParallel, UnionOverRanksIsExactlyTheFile) {
  const int nranks = GetParam();
  const auto dir = fs::temp_directory_path() /
                   ("hipmer_psdb_" + std::to_string(std::random_device{}()));
  fs::create_directories(dir);
  const auto reads = sample_reads(4321, 19);
  const auto path = (dir / "p.sdb").string();
  ASSERT_TRUE(write_seqdb(path, reads));

  pgas::ThreadTeam team(pgas::Topology{nranks, 2});
  ParallelSeqdbReader reader(path);
  EXPECT_EQ(reader.num_records(), reads.size());
  std::vector<std::vector<seq::Read>> by_rank(static_cast<std::size_t>(nranks));
  team.run([&](pgas::Rank& rank) {
    by_rank[static_cast<std::size_t>(rank.id())] = reader.read_my_records(rank);
  });
  std::vector<seq::Read> combined;
  for (const auto& part : by_rank)
    combined.insert(combined.end(), part.begin(), part.end());
  ASSERT_EQ(combined.size(), reads.size());
  for (std::size_t i = 0; i < reads.size(); ++i) {
    EXPECT_EQ(combined[i].name, reads[i].name) << i;
    EXPECT_EQ(combined[i].seq, reads[i].seq) << i;
  }
  fs::remove_all(dir);
}

INSTANTIATE_TEST_SUITE_P(Ranks, SeqdbParallel, ::testing::Values(1, 2, 3, 7, 16));

TEST_F(SeqdbFixture, RejectsCorruptMagic) {
  const auto path = file("bad.sdb");
  std::ofstream out(path, std::ios::binary);
  out << "this is not a seqdb file at all, padding padding padding";
  out.close();
  EXPECT_THROW(read_seqdb(path), std::runtime_error);
  EXPECT_THROW(ParallelSeqdbReader reader(path), std::runtime_error);
}

TEST_F(SeqdbFixture, RejectsTruncatedFile) {
  const auto reads = sample_reads(2000, 23);
  const auto path = file("t.sdb");
  ASSERT_TRUE(write_seqdb(path, reads));
  // Chop the footer off.
  const auto size = fs::file_size(path);
  fs::resize_file(path, size - 24);
  EXPECT_THROW(ParallelSeqdbReader reader(path), std::runtime_error);
}

// Overwrite `len` bytes at `off` in-place (for corruption tests).
void patch_file(const std::string& path, std::uint64_t off, const void* data,
                std::size_t len) {
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  ASSERT_TRUE(f.is_open());
  f.seekp(static_cast<std::streamoff>(off));
  f.write(static_cast<const char*>(data), static_cast<std::streamsize>(len));
  ASSERT_TRUE(f.good());
}

TEST_F(SeqdbFixture, GarbageRecordCountNeverAllocates) {
  const auto reads = sample_reads(200, 29);
  const auto path = file("count.sdb");
  ASSERT_TRUE(write_seqdb(path, reads));
  // The record count lives at offset 8. A count the file cannot possibly
  // hold must be rejected *before* reserve() — a crash or OOM here means
  // the reader trusted a corrupt length field.
  const std::uint64_t garbage = ~std::uint64_t{0} / 2;
  patch_file(path, 8, &garbage, sizeof garbage);
  try {
    (void)read_seqdb(path);
    FAIL() << "garbage record count was accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("corrupt record count"),
              std::string::npos)
        << e.what();
  }
}

TEST_F(SeqdbFixture, GarbageBlockCountIsRejected) {
  const auto reads = sample_reads(200, 31);
  const auto path = file("blockcount.sdb");
  ASSERT_TRUE(write_seqdb(path, reads));
  // First block's record count lives right after the 16-byte header.
  const std::uint32_t garbage = 0xFFFFFFFFu;
  patch_file(path, 16, &garbage, sizeof garbage);
  try {
    (void)read_seqdb(path);
    FAIL() << "garbage block count was accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("corrupt block record count"),
              std::string::npos)
        << e.what();
  }
  // The parallel reader hits the same guard when it decodes the block.
  // Single-rank team: a throwing rank skips read_my_records' trailing
  // barrier, which would strand any peer still waiting in it.
  pgas::ThreadTeam team(pgas::Topology{1, 1});
  ParallelSeqdbReader reader(path);
  std::atomic<int> caught{0};
  team.run([&](pgas::Rank& rank) {
    try {
      (void)reader.read_my_records(rank);
    } catch (const std::runtime_error& e) {
      if (std::string(e.what()).find("corrupt block record count") !=
          std::string::npos)
        caught.fetch_add(1);
    }
  });
  EXPECT_GE(caught.load(), 1);
}

TEST_F(SeqdbFixture, CorruptFooterIsRejectedNotTrusted) {
  const auto reads = sample_reads(300, 37);
  const auto path = file("footer.sdb");
  ASSERT_TRUE(write_seqdb(path, reads));
  const auto size = fs::file_size(path);

  // A block count that would overflow `num_blocks * 8` must not wrap its
  // way past the size identity and into a monster allocation.
  const std::uint64_t huge = ~std::uint64_t{0} / 8 + 2;
  patch_file(path, size - 16, &huge, sizeof huge);
  try {
    ParallelSeqdbReader reader(path);
    FAIL() << "overflowing block count was accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("corrupt footer"), std::string::npos)
        << e.what();
  }

  // A footer offset pointing before the header is equally corrupt.
  ASSERT_TRUE(write_seqdb(path, reads));
  const std::uint64_t before_header = 3;
  patch_file(path, size - 8, &before_header, sizeof before_header);
  try {
    ParallelSeqdbReader reader(path);
    FAIL() << "footer offset inside the header was accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("corrupt footer"), std::string::npos)
        << e.what();
  }
}

TEST_F(SeqdbFixture, CorruptBlockIndexIsRejected) {
  const auto reads = sample_reads(3000, 41);  // several blocks
  const auto path = file("index.sdb");
  ASSERT_TRUE(write_seqdb(path, reads));
  const auto size = fs::file_size(path);
  std::uint64_t trailer[2];  // num_blocks, footer_offset
  {
    std::ifstream in(path, std::ios::binary);
    in.seekg(static_cast<std::streamoff>(size - 16));
    in.read(reinterpret_cast<char*>(trailer), sizeof trailer);
    ASSERT_TRUE(in.good());
  }
  ASSERT_GT(trailer[0], 1u) << "need at least two blocks for this test";
  // Swap the first two block offsets: the footer identity still holds, but
  // the offsets are no longer strictly increasing.
  std::uint64_t offs[2];
  {
    std::ifstream in(path, std::ios::binary);
    in.seekg(static_cast<std::streamoff>(trailer[1]));
    in.read(reinterpret_cast<char*>(offs), sizeof offs);
    ASSERT_TRUE(in.good());
  }
  std::swap(offs[0], offs[1]);
  patch_file(path, trailer[1], offs, sizeof offs);
  try {
    ParallelSeqdbReader reader(path);
    FAIL() << "non-monotone block index was accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("corrupt block index"),
              std::string::npos)
        << e.what();
  }
}

TEST_F(SeqdbFixture, ByteFlipAndTruncationSweepNeverCrashes) {
  // Defensive sweep: flip one byte at a time (and truncate to assorted
  // sizes); every outcome must be either a clean read or a runtime_error —
  // never a crash, hang, or unbounded allocation. Payload-byte flips may
  // legitimately decode to different read content (the container has no
  // record checksums); structural corruption must throw.
  const auto reads = sample_reads(120, 43);
  const auto pristine = file("sweep.sdb");
  ASSERT_TRUE(write_seqdb(pristine, reads));
  std::string image;
  {
    std::ifstream in(pristine, std::ios::binary);
    image.assign(std::istreambuf_iterator<char>(in), {});
  }
  const auto path = file("flipped.sdb");
  for (std::size_t pos = 0; pos < image.size();
       pos += 1 + image.size() / 97) {
    std::string bad = image;
    bad[pos] = static_cast<char>(bad[pos] ^ 0x40);
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out.write(bad.data(), static_cast<std::streamsize>(bad.size()));
    }
    try {
      const auto back = read_seqdb(path);
      EXPECT_LE(back.size(), reads.size()) << "flip at " << pos;
    } catch (const std::runtime_error&) {
      // Rejected cleanly: fine.
    }
    try {
      // Single-rank team: a mid-decode throw must not strand a peer at
      // read_my_records' trailing barrier.
      ParallelSeqdbReader reader(path);
      pgas::ThreadTeam team(pgas::Topology{1, 1});
      team.run([&](pgas::Rank& rank) {
        try {
          (void)reader.read_my_records(rank);
        } catch (const std::runtime_error&) {
        }
      });
    } catch (const std::runtime_error&) {
    }
  }
  for (const std::size_t cut :
       {std::size_t{0}, std::size_t{7}, std::size_t{17}, image.size() / 3,
        image.size() / 2, image.size() - 1}) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(image.data(), static_cast<std::streamsize>(cut));
    out.close();
    // A cut anywhere in the record region starves read_seqdb; a cut only
    // inside the footer (the final bytes) is invisible to it but must
    // still fail the parallel reader's footer identity.
    if (cut < image.size() / 2 + 1) {
      EXPECT_THROW((void)read_seqdb(path), std::runtime_error)
          << "truncated to " << cut;
    }
    EXPECT_THROW(ParallelSeqdbReader reader(path), std::runtime_error)
        << "truncated to " << cut;
  }
}

TEST_F(SeqdbFixture, EmptyContainer) {
  const auto path = file("e.sdb");
  ASSERT_TRUE(write_seqdb(path, {}));
  EXPECT_TRUE(read_seqdb(path).empty());
  pgas::ThreadTeam team(pgas::Topology{2, 2});
  ParallelSeqdbReader reader(path);
  std::atomic<std::size_t> total{0};
  team.run([&](pgas::Rank& rank) {
    total += reader.read_my_records(rank).size();
  });
  EXPECT_EQ(total.load(), 0u);
}

}  // namespace
}  // namespace hipmer::io

namespace hipmer::kcount {
namespace {

TEST(Histogram, FindsValleyInBimodalSpectrum) {
  // Error spike decaying from count 1, coverage hump around 20.
  std::vector<std::uint64_t> hist(64, 0);
  const std::uint64_t errors[] = {0, 100000, 20000, 4000, 900, 300, 120, 60};
  for (std::size_t c = 1; c < 8; ++c) hist[c] = errors[c];
  for (int c = 8; c < 40; ++c) {
    const double d = (c - 20.0) / 5.0;
    hist[static_cast<std::size_t>(c)] +=
        static_cast<std::uint64_t>(50000.0 * std::exp(-d * d));
  }
  const auto cutoff = choose_min_count(hist);
  EXPECT_GE(cutoff, 4u);
  EXPECT_LE(cutoff, 10u);
  EXPECT_NEAR(estimate_kmer_depth(hist, cutoff), 20u, 2u);
}

TEST(Histogram, FlatSpectrumFallsBack) {
  std::vector<std::uint64_t> hist(64, 1000);  // metagenome-like: flat
  EXPECT_EQ(choose_min_count(hist, 2), 2u);
  EXPECT_EQ(choose_min_count({}, 5), 5u);
}

TEST(Histogram, MonotoneDecreasingFallsBack) {
  // Pure error spectrum with no coverage hump at all.
  std::vector<std::uint64_t> hist(64, 0);
  for (std::size_t c = 1; c < 64; ++c) hist[c] = 1'000'000 / (c * c * c);
  EXPECT_EQ(choose_min_count(hist, 3), 3u);
}

}  // namespace
}  // namespace hipmer::kcount
