// SAM emission and UFX checkpoint round-trips.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>

#include "align/sam.hpp"
#include "kcount/kmer_analysis.hpp"
#include "kcount/ufx_io.hpp"
#include "seq/dna.hpp"
#include "sim/genome_sim.hpp"
#include "sim/read_sim.hpp"

namespace hipmer {
namespace {

namespace fs = std::filesystem;

TEST(Sam, LineFormatForwardAndReverse) {
  seq::Read read;
  read.name = "lib:7/0";
  read.seq = "ACGTACGTAC";
  read.quals = "IIIIIIIIII";

  align::ReadAlignment a;
  a.pair_id = 7;
  a.mate = 0;
  a.contig_id = 3;
  a.contig_len = 500;
  a.contig_start = 99;
  a.contig_end = 107;
  a.read_start = 1;
  a.read_end = 9;
  a.read_len = 10;
  a.read_fwd = true;
  a.score = 8;

  const auto fwd = align::sam_line(a, read);
  std::istringstream is(fwd);
  std::string qname, rname, cigar, rnext, seqf;
  int flag = 0, pos = 0, mapq = 0, pnext = 0, tlen = 0;
  is >> qname >> flag >> rname >> pos >> mapq >> cigar >> rnext >> pnext >>
      tlen >> seqf;
  EXPECT_EQ(qname, "lib:7/0");
  EXPECT_EQ(flag, 0x1 | 0x40);
  EXPECT_EQ(rname, "contig_3");
  EXPECT_EQ(pos, 100);  // 1-based
  EXPECT_EQ(cigar, "1S8M1S");
  EXPECT_EQ(seqf, read.seq);

  a.read_fwd = false;
  a.mate = 1;
  const auto rev = align::sam_line(a, read);
  std::istringstream is2(rev);
  is2 >> qname >> flag >> rname >> pos >> mapq >> cigar >> rnext >> pnext >>
      tlen >> seqf;
  EXPECT_EQ(flag, 0x1 | 0x80 | 0x10);
  EXPECT_EQ(seqf, seq::revcomp(read.seq));
}

TEST(Sam, WriteFileWithHeader) {
  pgas::ThreadTeam team(pgas::Topology{2, 2});
  align::ContigStore store(team);
  std::mt19937_64 rng(77);
  dbg::Contig c;
  c.id = 0;
  c.seq = sim::random_dna(300, rng);

  seq::Read read;
  read.name = "lib:0/0";
  read.seq = c.seq.substr(50, 80);
  read.quals.assign(80, 'I');
  align::ReadAlignment a;
  a.pair_id = 0;
  a.mate = 0;
  a.contig_id = 0;
  a.contig_len = 300;
  a.contig_start = 50;
  a.contig_end = 130;
  a.read_start = 0;
  a.read_end = 80;
  a.read_len = 80;
  a.read_fwd = true;
  a.score = 80;

  const auto dir = fs::temp_directory_path() /
                   ("hipmer_sam_" + std::to_string(std::random_device{}()));
  fs::create_directories(dir);
  const auto path = (dir / "out.sam").string();
  team.run([&](pgas::Rank& rank) {
    store.build(rank, rank.is_root() ? std::vector<dbg::Contig>{c}
                                     : std::vector<dbg::Contig>{});
    rank.barrier();
    if (rank.is_root()) {
      EXPECT_TRUE(align::write_sam(rank, store, {a}, {read}, path));
    }
  });
  std::ifstream in(path);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("@SQ\tSN:contig_0\tLN:300"), std::string::npos);
  EXPECT_NE(text.find("80M"), std::string::npos);
  fs::remove_all(dir);
}

TEST(Ufx, ShardRoundTripAcrossTeamSizes) {
  // Produce a real UFX set, write with 4 ranks, reload with 3.
  sim::GenomeConfig gc;
  gc.length = 20'000;
  gc.seed = 88;
  const auto genome = sim::simulate_genome(gc);
  sim::LibraryConfig lc;
  lc.read_length = 80;
  lc.coverage = 10.0;
  lc.error_rate = 0.0;
  lc.seed = 89;
  const auto reads = sim::simulate_library(genome, lc);

  const auto dir = fs::temp_directory_path() /
                   ("hipmer_ufx_" + std::to_string(std::random_device{}()));
  fs::create_directories(dir);
  const auto path = (dir / "spectrum.ufx").string();

  std::map<std::string, std::pair<std::uint32_t, std::string>> written;
  {
    pgas::ThreadTeam team(pgas::Topology{4, 2});
    kcount::KmerAnalysisConfig cfg;
    cfg.k = 21;
    kcount::KmerAnalysis ka(team, cfg);
    team.run([&](pgas::Rank& rank) {
      std::vector<seq::Read> mine;
      for (std::size_t i = static_cast<std::size_t>(rank.id());
           i < reads.size(); i += 4)
        mine.push_back(reads[i]);
      ka.run(rank, mine);
      EXPECT_TRUE(kcount::write_ufx_shard(rank, path, ka.ufx(rank.id())));
    });
    for (int r = 0; r < 4; ++r)
      for (const auto& [km, s] : ka.ufx(r))
        written[km.to_string()] = {s.depth,
                                   std::string{s.left_ext, s.right_ext}};
  }
  ASSERT_GT(written.size(), 10'000u);

  std::map<std::string, std::pair<std::uint32_t, std::string>> loaded;
  {
    pgas::ThreadTeam team(pgas::Topology{3, 2});
    std::mutex mu;
    team.run([&](pgas::Rank& rank) {
      const auto mine = kcount::read_ufx_shards(rank, path, 4);
      std::lock_guard<std::mutex> lock(mu);
      for (const auto& [km, s] : mine)
        loaded[km.to_string()] = {s.depth,
                                  std::string{s.left_ext, s.right_ext}};
    });
  }
  EXPECT_EQ(loaded, written);
  fs::remove_all(dir);
}

TEST(Ufx, RejectsMalformedLines) {
  const auto dir = fs::temp_directory_path() /
                   ("hipmer_ufxbad_" + std::to_string(std::random_device{}()));
  fs::create_directories(dir);
  const auto path = (dir / "bad.ufx").string();
  std::ofstream out(path + ".0");
  out << "ACGTACGT\t5\tAC\n";
  out << "not a ufx line\n";
  out.close();
  EXPECT_THROW(kcount::read_ufx_shard(path, 0), std::runtime_error);
  EXPECT_THROW(kcount::read_ufx_shard(path, 1), std::runtime_error);  // absent
  fs::remove_all(dir);
}

TEST(Ufx, TruncationAtEveryOffsetNeverYieldsGarbage) {
  const auto dir = fs::temp_directory_path() /
                   ("hipmer_ufxtrunc_" + std::to_string(std::random_device{}()));
  fs::create_directories(dir);
  const auto path = (dir / "trunc.ufx").string();

  std::vector<kcount::UfxRecord> records;
  for (int i = 0; i < 6; ++i) {
    kcount::KmerSummary s;
    s.depth = static_cast<std::uint32_t>(100 + 37 * i);  // multi-digit counts
    s.left_ext = "ACGTFA"[i];
    s.right_ext = "TGCAXT"[i];
    std::string km;
    for (int j = 0; j < 21; ++j) km += "ACGT"[(i + j) % 4];
    records.emplace_back(seq::KmerT::from_string(km), s);
  }
  {
    pgas::ThreadTeam team(pgas::Topology{1, 1});
    team.run([&](pgas::Rank& rank) {
      ASSERT_TRUE(kcount::write_ufx_shard(rank, path, records));
    });
  }
  // Atomic rename left no temp file behind.
  EXPECT_FALSE(fs::exists(path + ".0.tmp"));

  std::ifstream in(path + ".0", std::ios::binary);
  const std::string full((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  in.close();
  ASSERT_FALSE(full.empty());

  // A shard cut at any byte offset must load as a strict prefix of the
  // written records or throw — never misparse into different records.
  for (std::size_t len = 0; len <= full.size(); ++len) {
    std::ofstream out(path + ".0", std::ios::binary | std::ios::trunc);
    out.write(full.data(), static_cast<std::streamsize>(len));
    out.close();
    std::vector<kcount::UfxRecord> loaded;
    try {
      loaded = kcount::read_ufx_shard(path, 0);
    } catch (const std::runtime_error&) {
      continue;  // detected — fine
    }
    ASSERT_LE(loaded.size(), records.size()) << "len " << len;
    for (std::size_t i = 0; i < loaded.size(); ++i) {
      EXPECT_EQ(loaded[i].first, records[i].first) << "len " << len;
      EXPECT_EQ(loaded[i].second.depth, records[i].second.depth)
          << "len " << len;
      EXPECT_EQ(loaded[i].second.left_ext, records[i].second.left_ext);
      EXPECT_EQ(loaded[i].second.right_ext, records[i].second.right_ext);
    }
  }
  fs::remove_all(dir);
}

TEST(Ufx, ReadChargesActualFileBytes) {
  const auto dir = fs::temp_directory_path() /
                   ("hipmer_ufxio_" + std::to_string(std::random_device{}()));
  fs::create_directories(dir);
  const auto path = (dir / "io.ufx").string();

  std::vector<kcount::UfxRecord> records;
  kcount::KmerSummary s;
  s.depth = 12345;  // 5 digits: record bytes != k + 8
  s.left_ext = 'A';
  s.right_ext = 'T';
  records.emplace_back(seq::KmerT::from_string(std::string(21, 'A')), s);

  pgas::ThreadTeam team(pgas::Topology{2, 1});
  team.run([&](pgas::Rank& rank) {
    ASSERT_TRUE(kcount::write_ufx_shard(rank, path, records));
    rank.barrier();
    const auto mine = kcount::read_ufx_shards(rank, path, 2);
    EXPECT_EQ(mine.size(), 1u);
  });
  const auto file_bytes = fs::file_size(path + ".0") + fs::file_size(path + ".1");
  const auto stats = team.snapshot_all();
  std::uint64_t read_bytes = 0, write_bytes = 0;
  for (const auto& st : stats) {
    read_bytes += st.io_read_bytes;
    write_bytes += st.io_write_bytes;
  }
  // Symmetric accounting: reads charge exactly what the writers wrote —
  // the real on-disk size, not a per-record estimate.
  EXPECT_EQ(read_bytes, file_bytes);
  EXPECT_EQ(write_bytes, file_bytes);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace hipmer
