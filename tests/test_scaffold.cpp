#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <map>
#include <random>

#include "align/contig_store.hpp"
#include "align/mer_aligner.hpp"
#include "scaffold/bubbles.hpp"
#include "scaffold/depths.hpp"
#include "scaffold/gap_closing.hpp"
#include "scaffold/insert_size.hpp"
#include "scaffold/links.hpp"
#include "scaffold/ordering.hpp"
#include "scaffold/sequence_builder.hpp"
#include "scaffold/splints_spans.hpp"
#include "seq/dna.hpp"
#include "seq/kmer_scanner.hpp"
#include "sim/genome_sim.hpp"
#include "sim/read_sim.hpp"

namespace hipmer::scaffold {
namespace {

using align::ReadAlignment;

ReadAlignment make_alignment(std::uint64_t pair, int mate, std::uint32_t contig,
                             std::uint32_t contig_len, std::int32_t cstart,
                             std::int32_t cend, bool fwd, std::int32_t rstart,
                             std::int32_t rend, std::int32_t read_len = 100,
                             int library = 0) {
  ReadAlignment a;
  a.pair_id = pair;
  a.mate = mate;
  a.library = library;
  a.contig_id = contig;
  a.contig_len = contig_len;
  a.contig_start = cstart;
  a.contig_end = cend;
  a.read_fwd = fwd;
  a.read_start = rstart;
  a.read_end = rend;
  a.read_len = read_len;
  a.score = rend - rstart;
  return a;
}

// ---- insert size (§4.4) ----

TEST(InsertSize, RecoversMeanAndStddev) {
  pgas::ThreadTeam team(pgas::Topology{4, 2});
  std::mt19937_64 rng(3);
  std::normal_distribution<double> dist(400.0, 30.0);
  // Pairs on one big contig: mate0 fwd at s, mate1 rev ending at s+insert.
  std::vector<std::vector<ReadAlignment>> per_rank(4);
  for (int r = 0; r < 4; ++r) {
    for (int i = 0; i < 500; ++i) {
      const auto insert = static_cast<std::int32_t>(dist(rng));
      const std::int32_t s = static_cast<std::int32_t>(rng() % 50000);
      const auto pair = static_cast<std::uint64_t>(r * 1000 + i);
      per_rank[static_cast<std::size_t>(r)].push_back(
          make_alignment(pair, 0, 1, 100000, s, s + 100, true, 0, 100));
      per_rank[static_cast<std::size_t>(r)].push_back(
          make_alignment(pair, 1, 1, 100000, s + insert - 100, s + insert,
                         false, 0, 100));
    }
  }
  InsertSizeEstimate est;
  team.run([&](pgas::Rank& rank) {
    const auto e = estimate_insert_size(
        rank, per_rank[static_cast<std::size_t>(rank.id())], 0);
    if (rank.is_root()) est = e;
  });
  EXPECT_EQ(est.samples, 2000u);
  EXPECT_NEAR(est.mean, 400.0, 3.0);
  EXPECT_NEAR(est.stddev, 30.0, 3.0);
}

TEST(InsertSize, IgnoresCrossContigAndSameOrientation) {
  pgas::ThreadTeam team(pgas::Topology{2, 2});
  std::vector<ReadAlignment> alignments;
  // Cross-contig pair.
  alignments.push_back(make_alignment(1, 0, 1, 1000, 0, 100, true, 0, 100));
  alignments.push_back(make_alignment(1, 1, 2, 1000, 0, 100, false, 0, 100));
  // Same-orientation pair (not FR).
  alignments.push_back(make_alignment(2, 0, 3, 1000, 0, 100, true, 0, 100));
  alignments.push_back(make_alignment(2, 1, 3, 1000, 300, 400, true, 0, 100));
  InsertSizeEstimate est;
  team.run([&](pgas::Rank& rank) {
    const auto e = estimate_insert_size(
        rank, rank.is_root() ? alignments : std::vector<ReadAlignment>{}, 0);
    if (rank.is_root()) est = e;
  });
  EXPECT_EQ(est.samples, 0u);
}

// ---- splints & spans (§4.5) ----

TEST(Splints, DetectsOverlappingContigEnds) {
  pgas::ThreadTeam team(pgas::Topology{1, 1});
  // Read covers end of contig 5 (bases 0..60 of the read) and start of
  // contig 9 (bases 40..100): contigs overlap by 20.
  std::vector<ReadAlignment> alignments;
  alignments.push_back(make_alignment(1, 0, 5, 500, 440, 500, true, 0, 60));
  alignments.push_back(make_alignment(1, 0, 9, 700, 0, 60, true, 40, 100));
  std::vector<LinkObservation> observations;
  team.run([&](pgas::Rank& rank) {
    observations = locate_splints(rank, alignments);
  });
  ASSERT_EQ(observations.size(), 1u);
  EXPECT_TRUE(observations[0].is_splint);
  EXPECT_EQ(observations[0].a, (ContigEnd{5, 1}));
  EXPECT_EQ(observations[0].b, (ContigEnd{9, 0}));
  EXPECT_FLOAT_EQ(observations[0].gap, -20.0f);
}

TEST(Splints, RespectsOrientationAndEndConditions) {
  pgas::ThreadTeam team(pgas::Topology{1, 1});
  std::vector<ReadAlignment> alignments;
  // Reverse-strand first alignment exiting through contig start.
  alignments.push_back(make_alignment(2, 1, 3, 400, 0, 50, false, 0, 50));
  alignments.push_back(make_alignment(2, 1, 4, 400, 350, 400, false, 45, 95));
  // Interior alignment (not at an end): no splint.
  alignments.push_back(make_alignment(3, 0, 6, 1000, 400, 460, true, 0, 60));
  alignments.push_back(make_alignment(3, 0, 7, 1000, 0, 50, true, 55, 105));
  std::vector<LinkObservation> observations;
  team.run([&](pgas::Rank& rank) {
    observations = locate_splints(rank, alignments);
  });
  ASSERT_EQ(observations.size(), 1u);
  EXPECT_EQ(observations[0].a, (ContigEnd{3, 0}));
  EXPECT_EQ(observations[0].b, (ContigEnd{4, 1}));
}

TEST(Spans, GapEstimateFromInsertSize) {
  pgas::ThreadTeam team(pgas::Topology{4, 2});
  std::vector<InsertSizeEstimate> inserts(1);
  inserts[0].mean = 400.0;
  inserts[0].stddev = 20.0;
  inserts[0].samples = 100;
  // mate0 fwd on contig 1 (len 1000) starting at 850 -> outward 150 via end1.
  // mate1 rev on contig 2 (len 1200), contig_end 120 -> outward 120 via end0.
  // gap = 400 - 150 - 120 = 130.
  std::vector<ReadAlignment> alignments;
  alignments.push_back(make_alignment(11, 0, 1, 1000, 850, 950, true, 0, 100));
  alignments.push_back(make_alignment(11, 1, 2, 1200, 20, 120, false, 0, 100));
  std::vector<LinkObservation> observations;
  team.run([&](pgas::Rank& rank) {
    auto result = locate_spans(
        rank, rank.is_root() ? alignments : std::vector<ReadAlignment>{},
        inserts);
    // pair 11 % 4 = rank 3 receives it.
    if (!result.empty()) observations = result;
  });
  ASSERT_EQ(observations.size(), 1u);
  EXPECT_FALSE(observations[0].is_splint);
  EXPECT_EQ(observations[0].a, (ContigEnd{1, 1}));
  EXPECT_EQ(observations[0].b, (ContigEnd{2, 0}));
  EXPECT_NEAR(observations[0].gap, 130.0f, 0.01f);
}

TEST(Spans, SkipsBuriedAndAmbiguousMates) {
  pgas::ThreadTeam team(pgas::Topology{2, 2});
  std::vector<InsertSizeEstimate> inserts(1);
  inserts[0].mean = 300.0;
  inserts[0].stddev = 10.0;
  inserts[0].samples = 100;
  std::vector<ReadAlignment> alignments;
  // Buried mate: outward distance 5000 >> 300 + 3*10.
  alignments.push_back(make_alignment(1, 0, 1, 10000, 5000, 5100, true, 0, 100));
  alignments.push_back(make_alignment(1, 1, 2, 1000, 0, 100, false, 0, 100));
  // Ambiguous mate: two equal-score placements on different contigs.
  alignments.push_back(make_alignment(2, 0, 3, 1000, 900, 1000, true, 0, 100));
  alignments.push_back(make_alignment(2, 1, 4, 1000, 0, 100, false, 0, 100));
  alignments.push_back(make_alignment(2, 1, 5, 1000, 0, 100, false, 0, 100));
  std::atomic<std::size_t> total{0};
  team.run([&](pgas::Rank& rank) {
    const auto result = locate_spans(
        rank, rank.is_root() ? alignments : std::vector<ReadAlignment>{},
        inserts);
    total += result.size();
  });
  EXPECT_EQ(total.load(), 0u);
}

// ---- links (§4.6) ----

TEST(Links, AggregatesAndThresholds) {
  pgas::ThreadTeam team(pgas::Topology{4, 2});
  LinkConfig cfg;
  cfg.min_support = 3;
  LinkGenerator links(team, cfg);
  std::vector<std::vector<Tie>> ties(4);
  team.run([&](pgas::Rank& rank) {
    std::vector<LinkObservation> obs;
    // Every rank contributes one observation of link A (support 4 total)
    // and rank 0 alone observes link B (support 1: below threshold).
    LinkObservation a;
    a.a = ContigEnd{1, 1};
    a.b = ContigEnd{2, 0};
    a.gap = 100.0f + static_cast<float>(rank.id());  // mean = 101.5
    a.is_splint = false;
    obs.push_back(a);
    if (rank.is_root()) {
      LinkObservation b;
      b.a = ContigEnd{3, 0};
      b.b = ContigEnd{4, 0};
      b.gap = 50.0f;
      obs.push_back(b);
    }
    links.add_observations(rank, obs);
    ties[static_cast<std::size_t>(rank.id())] = links.assess(rank);
  });
  std::vector<Tie> all;
  for (const auto& t : ties) all.insert(all.end(), t.begin(), t.end());
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all[0].support, 4u);
  EXPECT_NEAR(all[0].gap, 101.5, 0.01);
}

// ---- ordering & orientation (§4.7) ----

TEST(Ordering, ChainsMutualBestTies) {
  pgas::ThreadTeam team(pgas::Topology{2, 2});
  // Three contigs in a row: 0 -(end1:end0)- 1 -(end1:end0)- 2.
  std::vector<Tie> ties;
  ties.push_back(Tie{ContigEnd{0, 1}, ContigEnd{1, 0}, 10, 50.0});
  ties.push_back(Tie{ContigEnd{1, 1}, ContigEnd{2, 0}, 8, 30.0});
  std::vector<ContigLen> lens = {{0, 5000}, {1, 3000}, {2, 4000}};
  std::vector<ScaffoldRecord> scaffolds;
  team.run([&](pgas::Rank& rank) {
    auto result = order_and_orient(
        rank, rank.is_root() ? ties : std::vector<Tie>{},
        rank.is_root() ? lens : std::vector<ContigLen>{});
    if (rank.is_root()) scaffolds = result;
  });
  ASSERT_EQ(scaffolds.size(), 1u);
  ASSERT_EQ(scaffolds[0].placements.size(), 3u);
  EXPECT_EQ(scaffolds[0].placements[0].contig, 0u);
  EXPECT_FALSE(scaffolds[0].placements[0].reversed);
  EXPECT_EQ(scaffolds[0].placements[1].contig, 1u);
  EXPECT_FALSE(scaffolds[0].placements[1].reversed);
  EXPECT_EQ(scaffolds[0].placements[2].contig, 2u);
  EXPECT_NEAR(scaffolds[0].placements[0].gap_after, 50.0, 1e-9);
  EXPECT_NEAR(scaffolds[0].placements[1].gap_after, 30.0, 1e-9);
}

TEST(Ordering, HandlesReverseOrientation) {
  pgas::ThreadTeam team(pgas::Topology{1, 1});
  // Contig 1 joins via its end 1 -> must be reversed in the scaffold.
  std::vector<Tie> ties = {Tie{ContigEnd{0, 1}, ContigEnd{1, 1}, 5, 20.0}};
  std::vector<ContigLen> lens = {{0, 5000}, {1, 1000}};
  std::vector<ScaffoldRecord> scaffolds;
  team.run([&](pgas::Rank& rank) {
    scaffolds = order_and_orient(rank, ties, lens);
  });
  ASSERT_EQ(scaffolds.size(), 1u);
  ASSERT_EQ(scaffolds[0].placements.size(), 2u);
  EXPECT_EQ(scaffolds[0].placements[0].contig, 0u);
  EXPECT_FALSE(scaffolds[0].placements[0].reversed);
  EXPECT_EQ(scaffolds[0].placements[1].contig, 1u);
  EXPECT_TRUE(scaffolds[0].placements[1].reversed);
}

TEST(Ordering, NonMutualBestDoesNotChain) {
  pgas::ThreadTeam team(pgas::Topology{1, 1});
  // End (1,0) prefers contig 2 (higher support), so the 0-1 tie is not
  // mutual-best and must not be followed; 1-2 chains.
  std::vector<Tie> ties = {Tie{ContigEnd{0, 1}, ContigEnd{1, 0}, 3, 10.0},
                           Tie{ContigEnd{1, 0}, ContigEnd{2, 1}, 9, 10.0}};
  std::vector<ContigLen> lens = {{0, 9000}, {1, 800}, {2, 700}};
  std::vector<ScaffoldRecord> scaffolds;
  team.run([&](pgas::Rank& rank) {
    scaffolds = order_and_orient(rank, ties, lens);
  });
  // Scaffolds: {0} alone, {1,2} chained.
  ASSERT_EQ(scaffolds.size(), 2u);
  std::size_t total_placed = 0;
  for (const auto& s : scaffolds) total_placed += s.placements.size();
  EXPECT_EQ(total_placed, 3u);
  EXPECT_EQ(scaffolds[0].placements.size(), 1u);  // seeded by longest (0)
}

// ---- gap enumeration & closure (§4.8) ----

TEST(GapClosing, EnumerateGapsSkipsOverlaps) {
  ScaffoldRecord s;
  s.id = 7;
  s.placements = {Placement{1, false, 120.0}, Placement{2, false, -15.0},
                  Placement{3, false, 60.0}, Placement{4, false, 0.0}};
  const auto gaps = enumerate_gaps({s});
  ASSERT_EQ(gaps.size(), 2u);
  EXPECT_EQ(gaps[0].left_contig, 1u);
  EXPECT_EQ(gaps[0].right_contig, 2u);
  EXPECT_FLOAT_EQ(gaps[0].gap_estimate, 120.0f);
  EXPECT_EQ(gaps[1].left_contig, 3u);
  EXPECT_EQ(gaps[1].junction, 2u);
}

class GapClosingFixture : public ::testing::Test {
 protected:
  /// Build a genome, split it into two contigs with a gap, and produce
  /// reads covering the gap region.
  void build(std::size_t gap_len, std::uint64_t seed) {
    std::mt19937_64 rng(seed);
    genome_ = sim::random_dna(3000, rng);
    const std::size_t cut1 = 1400;
    const std::size_t cut2 = cut1 + gap_len;
    left_.id = 0;
    left_.seq = genome_.substr(0, cut1);
    right_.id = 1;
    right_.seq = genome_.substr(cut2);
    gap_fill_ = genome_.substr(cut1, gap_len);
  }

  std::vector<std::string> reads_over_gap(int read_len, int stride) {
    std::vector<std::string> reads;
    for (std::size_t i = 1000; i + static_cast<std::size_t>(read_len) < 2000;
         i += static_cast<std::size_t>(stride))
      reads.push_back(genome_.substr(i, static_cast<std::size_t>(read_len)));
    return reads;
  }

  /// Drive GapCloser::run through its public API: every read is declared
  /// to overhang contig 0's right end so projection routes it to the gap.
  Closure close(const std::vector<std::string>& reads, float gap_estimate) {
    GapSpec gap;
    gap.gap_id = 0;
    gap.left_contig = 0;
    gap.right_contig = 1;
    gap.gap_estimate = gap_estimate;
    std::vector<seq::Read> my_reads;
    std::vector<align::ReadAlignment> my_alignments;
    for (std::size_t i = 0; i < reads.size(); ++i) {
      seq::Read r;
      r.name = "g:" + std::to_string(i) + "/0";
      r.seq = reads[i];
      r.quals.assign(r.seq.size(), 'I');
      my_reads.push_back(r);
      // Claim the read aligns at contig 0's right end with overhang.
      align::ReadAlignment a;
      a.pair_id = i;
      a.mate = 0;
      a.library = 0;
      a.contig_id = 0;
      a.contig_len = static_cast<std::uint32_t>(left_.seq.size());
      a.contig_start = static_cast<std::int32_t>(left_.seq.size()) - 50;
      a.contig_end = static_cast<std::int32_t>(left_.seq.size());
      a.read_start = 0;
      a.read_end = 50;
      a.read_len = static_cast<std::int32_t>(reads[i].size());
      a.read_fwd = true;
      a.score = 50;
      my_alignments.push_back(a);
    }
    std::vector<InsertSizeEstimate> inserts(1);
    std::vector<Closure> closures;
    pgas::ThreadTeam team2(pgas::Topology{1, 1});
    align::ContigStore store2(team2);
    GapClosingConfig cfg2;
    cfg2.k = 21;
    GapCloser closer2(team2, cfg2);
    team2.run([&](pgas::Rank& rank) {
      store2.build(rank, {left_, right_});
      rank.barrier();
      closures = closer2.run(rank, {gap}, store2, {&my_reads}, my_alignments,
                             inserts);
    });
    return closures.empty() ? Closure{} : closures[0];
  }

  std::string genome_;
  dbg::Contig left_;
  dbg::Contig right_;
  std::string gap_fill_;
};

TEST_F(GapClosingFixture, SpanningClosesShortGap) {
  build(40, 901);
  // Reads of 150bp easily span a 40bp gap plus both anchors.
  const auto closure = close(reads_over_gap(150, 10), 40.0f);
  ASSERT_TRUE(closure.closed);
  EXPECT_EQ(closure.method, 'S');
  EXPECT_EQ(closure.fill, gap_fill_);
}

TEST_F(GapClosingFixture, WalkClosesLongGap) {
  build(300, 907);
  // 80bp reads cannot span a 300bp gap (+ anchors): the k-mer walk must
  // assemble across.
  const auto closure = close(reads_over_gap(80, 7), 300.0f);
  ASSERT_TRUE(closure.closed);
  EXPECT_TRUE(closure.method == 'W' || closure.method == 'P');
  EXPECT_EQ(closure.fill, gap_fill_);
}

TEST_F(GapClosingFixture, UnclosableGapReportsOpen) {
  build(300, 911);
  // No reads at all: nothing to close with.
  const auto closure = close({}, 300.0f);
  EXPECT_FALSE(closure.closed);
  EXPECT_EQ(closure.method, '-');
}

// ---- depths (§4.1) ----

TEST(Depths, MatchesKmerCounts) {
  pgas::ThreadTeam team(pgas::Topology{2, 2});
  const int k = 21;
  std::mt19937_64 rng(921);
  const auto seq0 = sim::random_dna(500, rng);
  dbg::Contig contig;
  contig.id = 0;
  contig.seq = seq0;

  // UFX entries: every k-mer of the contig with count 7.
  std::vector<std::pair<seq::KmerT, kcount::KmerSummary>> ufx;
  std::vector<seq::KmerT> kmers;
  seq::extract_kmers<seq::KmerT::kMaxK>(seq0, k, kmers);
  for (const auto& km : kmers) {
    kcount::KmerSummary s;
    s.depth = 7;
    ufx.emplace_back(km.canonical(), s);
  }

  align::ContigStore store(team);
  DepthCalculator calc(team, k, ufx.size());
  std::vector<std::pair<std::uint64_t, double>> depths;
  team.run([&](pgas::Rank& rank) {
    store.build(rank, rank.is_root() ? std::vector<dbg::Contig>{contig}
                                     : std::vector<dbg::Contig>{});
    rank.barrier();
    auto result = calc.run(
        rank,
        rank.is_root() ? ufx
                       : std::vector<std::pair<seq::KmerT, kcount::KmerSummary>>{},
        store);
    if (!result.empty()) depths = result;
  });
  ASSERT_EQ(depths.size(), 1u);
  EXPECT_EQ(depths[0].first, 0u);
  EXPECT_NEAR(depths[0].second, 7.0, 1e-9);
}

// ---- sequence builder ----

TEST(SequenceBuilder, MergesOverlapsAndFillsGaps) {
  pgas::ThreadTeam team(pgas::Topology{2, 2});
  std::mt19937_64 rng(931);
  const auto base = sim::random_dna(600, rng);
  // Contig 0 = base[0..300), contig 1 = base[280..600): 20bp true overlap.
  dbg::Contig c0;
  c0.id = 0;
  c0.seq = base.substr(0, 300);
  dbg::Contig c1;
  c1.id = 1;
  c1.seq = base.substr(280, 320);
  ScaffoldRecord scaffold;
  scaffold.id = 0;
  scaffold.placements = {Placement{0, false, -20.0}, Placement{1, false, 0.0}};

  align::ContigStore store(team);
  std::vector<io::FastaRecord> records;
  ScaffoldStats stats;
  team.run([&](pgas::Rank& rank) {
    store.build(rank, rank.is_root()
                          ? std::vector<dbg::Contig>{c0, c1}
                          : std::vector<dbg::Contig>{});
    rank.barrier();
    auto result = build_scaffold_sequences(rank, {scaffold}, store, {}, {},
                                           rank.is_root() ? &stats : nullptr);
    if (rank.is_root()) records = result;
  });
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].seq, base);  // exact overlap merge, no Ns
  EXPECT_EQ(stats.overlap_merges, 1u);
  EXPECT_EQ(stats.overlap_mismatches, 0u);
}

TEST(SequenceBuilder, UnclosedGapBecomesNs) {
  pgas::ThreadTeam team(pgas::Topology{1, 1});
  std::mt19937_64 rng(937);
  dbg::Contig c0;
  c0.id = 0;
  c0.seq = sim::random_dna(200, rng);
  dbg::Contig c1;
  c1.id = 1;
  c1.seq = sim::random_dna(200, rng);
  ScaffoldRecord scaffold;
  scaffold.id = 0;
  scaffold.placements = {Placement{0, false, 37.0}, Placement{1, true, 0.0}};
  const auto gaps = enumerate_gaps({scaffold});
  ASSERT_EQ(gaps.size(), 1u);

  align::ContigStore store(team);
  std::vector<io::FastaRecord> records;
  team.run([&](pgas::Rank& rank) {
    store.build(rank, {c0, c1});
    rank.barrier();
    records = build_scaffold_sequences(rank, {scaffold}, store, gaps, {});
  });
  ASSERT_EQ(records.size(), 1u);
  const std::string expect =
      c0.seq + std::string(37, 'N') + seq::revcomp(c1.seq);
  EXPECT_EQ(records[0].seq, expect);
}

// ---- bubbles (§4.2) ----

TEST(Bubbles, MergesCleanDiploidBubble) {
  // Hand-built bubble: flank L, two paths U (deep) and V (shallow), flank R.
  // Junction k-mers: jL = last k-mer of L; jR = first k-mer of R.
  pgas::ThreadTeam team(pgas::Topology{2, 2});
  const int k = 21;
  std::mt19937_64 rng(941);
  const auto left = sim::random_dna(300, rng);
  const auto mid_u = sim::random_dna(2 * k, rng);
  auto mid_v = mid_u;
  mid_v[k] = seq::complement_base(mid_v[k]);  // one SNP between paths
  const auto right = sim::random_dna(300, rng);

  const auto jl = seq::KmerT::from_string(left.substr(left.size() - k)).canonical();
  const auto jr = seq::KmerT::from_string(right.substr(0, k)).canonical();

  auto make = [&](std::uint64_t id, std::string s, double depth,
                  char lcode, char rcode, bool lj, bool rj) {
    dbg::Contig c;
    c.id = id;
    c.seq = std::move(s);
    c.avg_depth = depth;
    c.left.code = lcode;
    c.right.code = rcode;
    c.left.has_junction = lj;
    c.right.has_junction = rj;
    if (lj) c.left.junction = (id == 0) ? jl : jl;   // set precisely below
    if (rj) c.right.junction = jr;
    return c;
  };
  // L: right end F at jL. U, V: left end N at jL, right end N at jR.
  // R: left end F at jR.
  auto L = make(0, left, 20, 'X', 'F', false, false);
  L.right.junction = jl;
  L.right.has_junction = true;
  // Traversal convention: a path contig stops *before* the junction k-mer,
  // so it overlaps each flank by exactly k-1 bases.
  const auto kk = static_cast<std::size_t>(k);
  auto U = make(1,
                left.substr(left.size() - (kk - 1)) + mid_u +
                    right.substr(0, kk - 1),
                12, 'N', 'N', true, true);
  U.left.junction = jl;
  U.right.junction = jr;
  auto V = make(2,
                left.substr(left.size() - (kk - 1)) + mid_v +
                    right.substr(0, kk - 1),
                8, 'N', 'N', true, true);
  V.left.junction = jl;
  V.right.junction = jr;
  auto R = make(3, right, 20, 'F', 'X', false, false);
  R.left.junction = jr;
  R.left.has_junction = true;

  align::ContigStore store(team);
  BubbleConfig cfg;
  cfg.k = k;
  BubbleMerger merger(team, cfg, 16);
  std::vector<std::vector<dbg::Contig>> merged(2);
  team.run([&](pgas::Rank& rank) {
    store.build(rank, rank.is_root()
                          ? std::vector<dbg::Contig>{L, U, V, R}
                          : std::vector<dbg::Contig>{});
    rank.barrier();
    merged[static_cast<std::size_t>(rank.id())] = merger.run(rank, store);
  });

  std::vector<dbg::Contig> all;
  for (const auto& m : merged) all.insert(all.end(), m.begin(), m.end());
  // L + U + R merged into one contig; V dropped.
  ASSERT_EQ(all.size(), 1u);
  const std::string expect = left + mid_u + right;
  const auto got = all[0].seq;
  EXPECT_TRUE(got == expect || got == seq::revcomp(expect));
  EXPECT_EQ(merger.bubbles_merged(), 2u);  // two junctions resolved
}

TEST(Bubbles, PassThroughWithoutJunctions) {
  pgas::ThreadTeam team(pgas::Topology{2, 2});
  std::mt19937_64 rng(947);
  std::vector<dbg::Contig> contigs;
  for (int i = 0; i < 6; ++i) {
    dbg::Contig c;
    c.id = static_cast<std::uint64_t>(i);
    c.seq = sim::random_dna(200 + static_cast<std::uint64_t>(i), rng);
    contigs.push_back(c);
  }
  align::ContigStore store(team);
  BubbleConfig cfg;
  cfg.k = 21;
  BubbleMerger merger(team, cfg, 16);
  std::vector<std::vector<dbg::Contig>> merged(2);
  team.run([&](pgas::Rank& rank) {
    store.build(rank, rank.is_root() ? contigs : std::vector<dbg::Contig>{});
    rank.barrier();
    merged[static_cast<std::size_t>(rank.id())] = merger.run(rank, store);
  });
  // The merger emits canonical orientation; compare canonical forms.
  auto canonical = [](const std::string& s) {
    const auto rc = seq::revcomp(s);
    return std::min(s, rc);
  };
  std::vector<std::string> seqs;
  for (const auto& m : merged)
    for (const auto& c : m) seqs.push_back(canonical(c.seq));
  ASSERT_EQ(seqs.size(), 6u);
  std::vector<std::string> expect;
  for (const auto& c : contigs) expect.push_back(canonical(c.seq));
  std::sort(seqs.begin(), seqs.end());
  std::sort(expect.begin(), expect.end());
  EXPECT_EQ(seqs, expect);
}

}  // namespace
}  // namespace hipmer::scaffold
