// PackedReads property tests: 2-bit pack → decode is byte-exact on
// arbitrary inputs (N bases, lowercase, boundary lengths), qual RLE is the
// identity, the packed-word k-mer scanner matches the string scanner, the
// ReadStore accessors agree across representations, the checkpoint codecs
// round-trip, and the packed arena actually delivers the memory reduction
// the bench reports.

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "ckpt/artifacts.hpp"
#include "seq/kmer_scanner.hpp"
#include "seq/packed_reads.hpp"
#include "seq/read_store.hpp"

namespace hipmer::seq {
namespace {

std::string random_seq(std::mt19937& rng, std::size_t len, double n_rate,
                       double lower_rate) {
  static const char* kBases = "ACGT";
  static const char* kLower = "acgt";
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  std::uniform_int_distribution<int> base(0, 3);
  std::string s(len, 'A');
  for (auto& c : s) {
    const double u = coin(rng);
    if (u < n_rate)
      c = 'N';
    else if (u < n_rate + lower_rate)
      c = kLower[base(rng)];
    else
      c = kBases[base(rng)];
  }
  return s;
}

std::string random_quals(std::mt19937& rng, std::size_t len) {
  // phred_to_char clamps to '!'..']'; runs of identical scores are the
  // common case RLE exploits, so bias toward runs.
  std::uniform_int_distribution<int> q('!', ']');
  std::uniform_int_distribution<int> run_len(1, 12);
  std::string s;
  while (s.size() < len) {
    const char c = static_cast<char>(q(rng));
    const int n = run_len(rng);
    for (int i = 0; i < n && s.size() < len; ++i) s.push_back(c);
  }
  return s;
}

TEST(PackedReads, RoundTripBoundaryLengths) {
  // Word boundaries (32 bases per u64) and degenerate sizes.
  std::mt19937 rng(99);
  PackedReads arena;
  std::vector<std::string> seqs;
  std::vector<std::string> quals;
  for (const std::size_t len :
       {std::size_t{0}, std::size_t{1}, std::size_t{2}, std::size_t{31},
        std::size_t{32}, std::size_t{33}, std::size_t{63}, std::size_t{64},
        std::size_t{65}, std::size_t{100}, std::size_t{1000}}) {
    seqs.push_back(random_seq(rng, len, 0.05, 0.05));
    quals.push_back(random_quals(rng, len));
    arena.append("r" + std::to_string(len), seqs.back(), quals.back());
  }
  ASSERT_EQ(arena.size(), seqs.size());
  std::string s, q;
  for (std::size_t i = 0; i < arena.size(); ++i) {
    arena.decode_seq(i, s);
    arena.decode_quals(i, q);
    EXPECT_EQ(s, seqs[i]) << "read " << i;
    EXPECT_EQ(q, quals[i]) << "read " << i;
    EXPECT_EQ(arena.length(i), seqs[i].size());
  }
}

TEST(PackedReads, RoundTripRandomReads) {
  std::mt19937 rng(7);
  std::uniform_int_distribution<std::size_t> len(1, 300);
  PackedReads arena;
  std::vector<std::string> seqs;
  std::vector<std::string> quals;
  for (int i = 0; i < 500; ++i) {
    // Sweep exception densities: pure ACGT, sprinkled Ns, N-heavy,
    // lowercase soft-masking.
    const double n_rate = (i % 4 == 0) ? 0.0 : (i % 4 == 1 ? 0.02 : 0.3);
    const double lower_rate = (i % 4 == 3) ? 0.2 : 0.0;
    seqs.push_back(random_seq(rng, len(rng), n_rate, lower_rate));
    quals.push_back(random_quals(rng, seqs.back().size()));
    arena.append("read/" + std::to_string(i), seqs.back(), quals.back());
  }
  std::string s, q;
  for (std::size_t i = 0; i < arena.size(); ++i) {
    arena.decode_seq(i, s);
    arena.decode_quals(i, q);
    ASSERT_EQ(s, seqs[i]) << "read " << i;
    ASSERT_EQ(q, quals[i]) << "read " << i;
    EXPECT_EQ(arena.name(i), "read/" + std::to_string(i));
  }
}

void expect_qual_round_trip(std::string_view quals) {
  std::vector<std::uint8_t> enc;
  encode_quals(quals, enc);
  std::string back;
  decode_quals(enc.data(), enc.size(), quals.size(), back);
  ASSERT_EQ(back, quals);
}

TEST(PackedReads, QualCodecIdentity) {
  std::mt19937 rng(13);
  for (int trial = 0; trial < 200; ++trial) {
    const auto quals = random_quals(
        rng, std::uniform_int_distribution<std::size_t>(0, 600)(rng));
    expect_qual_round_trip(quals);
  }
  // A run longer than 255 must split across RLE pairs, and a constant
  // string must compress.
  const std::string long_run(1000, 'I');
  expect_qual_round_trip(long_run);
  std::vector<std::uint8_t> enc;
  encode_quals(long_run, enc);
  EXPECT_EQ(enc[0], kQualModeRle);
  EXPECT_LT(enc.size(), long_run.size() / 2);

  // i.i.d. qualities in a narrow band — the simulator's model — would
  // EXPAND under RLE; the codec must fall back to 4-bit band packing and
  // still round-trip exactly.
  std::uniform_int_distribution<int> good_qual(30, 41);
  std::string iid(400, '!');
  for (auto& c : iid) c = phred_to_char(good_qual(rng));
  expect_qual_round_trip(iid);
  enc.clear();
  encode_quals(iid, enc);
  EXPECT_EQ(enc[0], kQualModeBand);
  EXPECT_LE(enc.size(), 2 + iid.size() / 2);

  // A full-range high-entropy string fits neither mode: verbatim keeps the
  // worst case bounded at n+1 and still byte-exact.
  std::string wide(301, '!');
  std::uniform_int_distribution<int> any('!', ']');
  for (auto& c : wide) c = static_cast<char>(any(rng));
  expect_qual_round_trip(wide);
  enc.clear();
  encode_quals(wide, enc);
  EXPECT_LE(enc.size(), wide.size() + 1);

  // Degenerate inputs.
  expect_qual_round_trip("");
  expect_qual_round_trip("I");
  expect_qual_round_trip("!]");
}

// Illumina-like profile: high-entropy scores in a ~12-value band plus a
// few '#' floor scores at N positions. The floor chars push max-min past
// 15 (no plain band) and the entropy defeats RLE, so before the outlier
// mode existed these reads paid full verbatim price.
std::string illumina_quals(std::mt19937& rng, std::size_t len,
                           double floor_rate) {
  std::uniform_int_distribution<int> good(30, 41);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  std::string s(len, '!');
  for (auto& c : s)
    c = coin(rng) < floor_rate ? '#' : phred_to_char(good(rng));
  return s;
}

TEST(PackedReads, QualCodecBandOutlier) {
  std::mt19937 rng(17);
  auto q = illumina_quals(rng, 400, 0.02);
  q[37] = '#';  // guarantee at least one outlier regardless of seed
  expect_qual_round_trip(q);

  std::vector<std::uint8_t> enc;
  encode_quals(q, enc);
  ASSERT_EQ(enc[0], kQualModeBandOutlier);
  // Size is exact: mode + base + u16 count + 3 bytes per outlier + packed
  // nibbles. Every '#' sits outside the chosen window here.
  const auto k = static_cast<std::size_t>(std::count(q.begin(), q.end(), '#'));
  EXPECT_EQ(enc.size(), 4 + 3 * k + (q.size() + 1) / 2);
  EXPECT_LT(enc.size(), q.size());  // strictly beats the old verbatim path

  // Sweep outlier densities, both tails, and boundary lengths.
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  std::uniform_int_distribution<int> good(30, 41);
  std::uniform_int_distribution<std::size_t> len(0, 700);
  for (int trial = 0; trial < 300; ++trial) {
    const double rate = static_cast<double>(trial % 6) * 0.02;
    std::string s(len(rng), '!');
    for (auto& c : s)
      c = coin(rng) < rate ? (coin(rng) < 0.5 ? '#' : ']')
                           : phred_to_char(good(rng));
    expect_qual_round_trip(s);
  }
}

TEST(PackedReads, QualCodecOutlierEligibility) {
  std::mt19937 rng(19);
  // Within a 16-value range the plain band always costs 2 bytes less than
  // the outlier header, so narrow-band inputs keep their historical
  // encoding byte for byte.
  const auto narrow = illumina_quals(rng, 256, 0.0);
  std::vector<std::uint8_t> enc;
  encode_quals(narrow, enc);
  EXPECT_EQ(enc[0], kQualModeBand);

  // Reads of 64Ki and beyond cannot address outlier positions in u16: the
  // codec must fall back to the original modes and still round-trip.
  auto huge = illumina_quals(rng, 0x10000 + 3, 0.0);
  huge[100] = '#';  // would make the outlier mode win if it were eligible
  enc.clear();
  encode_quals(huge, enc);
  EXPECT_EQ(enc[0], kQualModeVerbatim);
  expect_qual_round_trip(huge);
}

TEST(PackedReads, QualCodecDecodeIsRobustToCorruption) {
  std::mt19937 rng(23);
  auto q = illumina_quals(rng, 200, 0.03);
  q[0] = '#';
  std::vector<std::uint8_t> enc;
  encode_quals(q, enc);
  ASSERT_EQ(enc[0], kQualModeBandOutlier);

  // Every truncation decodes without walking off the buffer and never
  // fabricates more than n characters.
  std::string out;
  for (std::size_t cut = 0; cut <= enc.size(); ++cut) {
    decode_quals(enc.data(), cut, q.size(), out);
    EXPECT_LE(out.size(), q.size()) << "cut " << cut;
  }
  // An outlier count pointing past the payload is rejected outright.
  auto bad = enc;
  bad[2] = 0xFF;
  bad[3] = 0xFF;
  decode_quals(bad.data(), bad.size(), q.size(), out);
  EXPECT_TRUE(out.empty());
}

TEST(PackedReads, CodeMatchesBaseToCode) {
  std::mt19937 rng(21);
  PackedReads arena;
  const auto s = random_seq(rng, 200, 0.1, 0.1);
  arena.append("r", s, std::string(s.size(), 'I'));
  const auto view = arena.view(0);
  for (std::size_t i = 0; i < s.size(); ++i) {
    EXPECT_EQ(view.code(static_cast<std::uint32_t>(i)), base_to_code(s[i]))
        << "pos " << i;
    EXPECT_EQ(view.base(static_cast<std::uint32_t>(i)), s[i]) << "pos " << i;
  }
}

TEST(PackedReads, ScannerMatchesStringScanner) {
  std::mt19937 rng(31);
  PackedReads arena;
  std::vector<std::string> seqs;
  for (int i = 0; i < 50; ++i) {
    seqs.push_back(random_seq(rng, 150, i % 3 == 0 ? 0.05 : 0.0, 0.0));
    arena.append("r", seqs.back(), std::string(seqs.back().size(), 'I'));
  }
  for (const int k : {15, 31}) {
    for (std::size_t i = 0; i < seqs.size(); ++i) {
      KmerScanner<KmerT::kMaxK> packed(arena.view(i), k);
      KmerScanner<KmerT::kMaxK> plain(std::string_view(seqs[i]), k);
      while (!plain.done() && !packed.done()) {
        EXPECT_EQ(packed.position(), plain.position());
        EXPECT_EQ(packed.is_flipped(), plain.is_flipped());
        EXPECT_EQ(packed.canonical(), plain.canonical());
        packed.next();
        plain.next();
      }
      EXPECT_EQ(packed.done(), plain.done()) << "read " << i << " k " << k;
    }
  }
}

TEST(ReadStore, RepresentationsAgree) {
  std::mt19937 rng(41);
  ReadStore packed(true);
  ReadStore plain(false);
  std::vector<Read> originals;
  for (int i = 0; i < 100; ++i) {
    Read r;
    r.name = "lib0:" + std::to_string(i / 2) + "/" + std::to_string(i % 2);
    r.seq = random_seq(rng, 120, 0.02, 0.0);
    r.quals = random_quals(rng, r.seq.size());
    packed.append(r);
    plain.append(r);
    originals.push_back(std::move(r));
  }
  ASSERT_EQ(packed.size(), plain.size());
  std::string s1, s2, q1, q2;
  for (std::size_t i = 0; i < packed.size(); ++i) {
    EXPECT_EQ(packed.name(i), plain.name(i));
    EXPECT_EQ(packed.length(i), plain.length(i));
    EXPECT_EQ(packed.seq(i, s1), plain.seq(i, s2));
    EXPECT_EQ(packed.quals(i, q1), plain.quals(i, q2));
    for (std::uint32_t pos = 0; pos < packed.length(i); pos += 7)
      EXPECT_EQ(packed.code(i, pos), plain.code(i, pos));
  }
  // Materialization returns the original records either way.
  EXPECT_EQ(packed.to_reads(), originals);
  EXPECT_EQ(plain.to_reads(), originals);
}

TEST(ReadStore, CheckpointCodecsRoundTrip) {
  std::mt19937 rng(51);
  std::vector<seq::ReadStore> packed_libs;
  std::vector<seq::ReadStore> plain_libs;
  std::vector<std::vector<Read>> originals(2);
  for (int lib = 0; lib < 2; ++lib) {
    packed_libs.emplace_back(true);
    plain_libs.emplace_back(false);
    for (int i = 0; i < 40; ++i) {
      Read r;
      r.name = "lib" + std::to_string(lib) + ":" + std::to_string(i / 2) + "/" +
               std::to_string(i % 2);
      r.seq = random_seq(rng, 100, 0.03, 0.0);
      r.quals = random_quals(rng, r.seq.size());
      packed_libs[static_cast<std::size_t>(lib)].append(r);
      plain_libs[static_cast<std::size_t>(lib)].append(r);
      originals[static_cast<std::size_t>(lib)].push_back(std::move(r));
    }
  }

  // Packed shard ("RDP1") decodes back to the exact records.
  const auto packed_bytes = ckpt::encode_packed_reads_shard(packed_libs);
  const auto decoded = ckpt::decode_reads_shard(packed_bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, originals);

  // A plain store repacked on the fly produces the identical payload.
  EXPECT_EQ(ckpt::encode_packed_reads_shard(plain_libs), packed_bytes);

  // The string shard written from stores matches the vector<Read> writer
  // byte for byte, so snapshots are interchangeable.
  EXPECT_EQ(ckpt::encode_reads_shard(packed_libs),
            ckpt::encode_reads_shard(originals));
  const auto plain_decoded =
      ckpt::decode_reads_shard(ckpt::encode_reads_shard(plain_libs));
  ASSERT_TRUE(plain_decoded.has_value());
  EXPECT_EQ(*plain_decoded, originals);

  // And the packed shard is meaningfully smaller.
  EXPECT_LT(packed_bytes.size(),
            ckpt::encode_reads_shard(originals).size() / 2);
}

// Binned-and-bursty qualities, the model modern basecallers emit (a few
// quantized score levels with long runs).
std::string binned_quals(std::mt19937& rng, std::size_t len) {
  static const char kBins[] = {'#', '-', '8', 'F'};
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  std::uniform_int_distribution<int> bin(0, 3);
  std::string s(len, 'F');
  char cur = kBins[bin(rng)];
  for (auto& c : s) {
    if (coin(rng) < 0.1) cur = kBins[bin(rng)];
    c = cur;
  }
  return s;
}

TEST(ReadStore, PackedMemoryIsAtLeastThreeTimesSmaller) {
  std::mt19937 rng(61);
  ReadStore packed(true);
  ReadStore plain(false);
  for (int i = 0; i < 20000; ++i) {
    Read r;
    r.name = "lib0:" + std::to_string(i / 2) + "/" + std::to_string(i % 2);
    r.seq = random_seq(rng, 150, 0.005, 0.0);
    r.quals = binned_quals(rng, 150);
    packed.append(r);
    plain.append(std::move(r));
  }
  // The pipeline compacts packed arenas after ingest; the plain store is
  // measured as built, which is exactly what the seed pipeline held.
  packed.shrink_to_fit();
  const double ratio = static_cast<double>(plain.memory_bytes()) /
                       static_cast<double>(packed.memory_bytes());
  EXPECT_GE(ratio, 3.0) << "plain=" << plain.memory_bytes()
                        << " packed=" << packed.memory_bytes();
}

}  // namespace
}  // namespace hipmer::seq
