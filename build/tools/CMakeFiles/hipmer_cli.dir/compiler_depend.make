# Empty compiler generated dependencies file for hipmer_cli.
# This may be replaced when dependencies are built.
