file(REMOVE_RECURSE
  "CMakeFiles/hipmer_cli.dir/hipmer_cli.cpp.o"
  "CMakeFiles/hipmer_cli.dir/hipmer_cli.cpp.o.d"
  "hipmer"
  "hipmer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hipmer_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
