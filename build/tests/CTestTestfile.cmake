# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_pgas[1]_include.cmake")
include("/root/repo/build/tests/test_seq[1]_include.cmake")
include("/root/repo/build/tests/test_io[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_kcount[1]_include.cmake")
include("/root/repo/build/tests/test_dbg[1]_include.cmake")
include("/root/repo/build/tests/test_align[1]_include.cmake")
include("/root/repo/build/tests/test_pipeline[1]_include.cmake")
include("/root/repo/build/tests/test_scaffold[1]_include.cmake")
include("/root/repo/build/tests/test_baseline[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_seqdb[1]_include.cmake")
include("/root/repo/build/tests/test_robustness[1]_include.cmake")
include("/root/repo/build/tests/test_formats[1]_include.cmake")
include("/root/repo/build/tests/test_logging[1]_include.cmake")
include("/root/repo/build/tests/test_scenarios[1]_include.cmake")
