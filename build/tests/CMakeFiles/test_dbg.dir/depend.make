# Empty dependencies file for test_dbg.
# This may be replaced when dependencies are built.
