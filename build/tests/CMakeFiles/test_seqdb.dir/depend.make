# Empty dependencies file for test_seqdb.
# This may be replaced when dependencies are built.
