file(REMOVE_RECURSE
  "CMakeFiles/test_seqdb.dir/test_seqdb.cpp.o"
  "CMakeFiles/test_seqdb.dir/test_seqdb.cpp.o.d"
  "test_seqdb"
  "test_seqdb.pdb"
  "test_seqdb[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_seqdb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
