file(REMOVE_RECURSE
  "CMakeFiles/test_kcount.dir/test_kcount.cpp.o"
  "CMakeFiles/test_kcount.dir/test_kcount.cpp.o.d"
  "test_kcount"
  "test_kcount.pdb"
  "test_kcount[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kcount.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
