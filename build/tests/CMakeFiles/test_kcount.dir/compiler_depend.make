# Empty compiler generated dependencies file for test_kcount.
# This may be replaced when dependencies are built.
