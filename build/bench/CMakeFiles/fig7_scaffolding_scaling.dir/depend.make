# Empty dependencies file for fig7_scaffolding_scaling.
# This may be replaced when dependencies are built.
