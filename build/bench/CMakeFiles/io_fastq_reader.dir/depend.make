# Empty dependencies file for io_fastq_reader.
# This may be replaced when dependencies are built.
