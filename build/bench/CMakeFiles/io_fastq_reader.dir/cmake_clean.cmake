file(REMOVE_RECURSE
  "CMakeFiles/io_fastq_reader.dir/io_fastq_reader.cpp.o"
  "CMakeFiles/io_fastq_reader.dir/io_fastq_reader.cpp.o.d"
  "io_fastq_reader"
  "io_fastq_reader.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/io_fastq_reader.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
