file(REMOVE_RECURSE
  "CMakeFiles/table3_metagenome.dir/table3_metagenome.cpp.o"
  "CMakeFiles/table3_metagenome.dir/table3_metagenome.cpp.o.d"
  "table3_metagenome"
  "table3_metagenome.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_metagenome.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
