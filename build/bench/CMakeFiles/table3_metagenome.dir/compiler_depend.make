# Empty compiler generated dependencies file for table3_metagenome.
# This may be replaced when dependencies are built.
