# Empty compiler generated dependencies file for sec56_competitors.
# This may be replaced when dependencies are built.
