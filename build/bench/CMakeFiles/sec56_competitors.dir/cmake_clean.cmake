file(REMOVE_RECURSE
  "CMakeFiles/sec56_competitors.dir/sec56_competitors.cpp.o"
  "CMakeFiles/sec56_competitors.dir/sec56_competitors.cpp.o.d"
  "sec56_competitors"
  "sec56_competitors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec56_competitors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
