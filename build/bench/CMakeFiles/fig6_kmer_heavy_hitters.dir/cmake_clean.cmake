file(REMOVE_RECURSE
  "CMakeFiles/fig6_kmer_heavy_hitters.dir/fig6_kmer_heavy_hitters.cpp.o"
  "CMakeFiles/fig6_kmer_heavy_hitters.dir/fig6_kmer_heavy_hitters.cpp.o.d"
  "fig6_kmer_heavy_hitters"
  "fig6_kmer_heavy_hitters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_kmer_heavy_hitters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
