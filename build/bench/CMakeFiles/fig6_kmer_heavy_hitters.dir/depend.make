# Empty dependencies file for fig6_kmer_heavy_hitters.
# This may be replaced when dependencies are built.
