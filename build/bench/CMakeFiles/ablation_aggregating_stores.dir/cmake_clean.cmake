file(REMOVE_RECURSE
  "CMakeFiles/ablation_aggregating_stores.dir/ablation_aggregating_stores.cpp.o"
  "CMakeFiles/ablation_aggregating_stores.dir/ablation_aggregating_stores.cpp.o.d"
  "ablation_aggregating_stores"
  "ablation_aggregating_stores.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_aggregating_stores.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
