# Empty dependencies file for ablation_aggregating_stores.
# This may be replaced when dependencies are built.
