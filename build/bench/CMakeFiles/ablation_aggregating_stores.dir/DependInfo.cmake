
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_aggregating_stores.cpp" "bench/CMakeFiles/ablation_aggregating_stores.dir/ablation_aggregating_stores.cpp.o" "gcc" "bench/CMakeFiles/ablation_aggregating_stores.dir/ablation_aggregating_stores.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/hipmer_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/hipmer_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/pipeline/CMakeFiles/hipmer_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/scaffold/CMakeFiles/hipmer_scaffold.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/hipmer_io.dir/DependInfo.cmake"
  "/root/repo/build/src/align/CMakeFiles/hipmer_align.dir/DependInfo.cmake"
  "/root/repo/build/src/dbg/CMakeFiles/hipmer_dbg.dir/DependInfo.cmake"
  "/root/repo/build/src/kcount/CMakeFiles/hipmer_kcount.dir/DependInfo.cmake"
  "/root/repo/build/src/pgas/CMakeFiles/hipmer_pgas.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hipmer_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
