file(REMOVE_RECURSE
  "CMakeFiles/table1_2_oracle_traversal.dir/table1_2_oracle_traversal.cpp.o"
  "CMakeFiles/table1_2_oracle_traversal.dir/table1_2_oracle_traversal.cpp.o.d"
  "table1_2_oracle_traversal"
  "table1_2_oracle_traversal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_2_oracle_traversal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
