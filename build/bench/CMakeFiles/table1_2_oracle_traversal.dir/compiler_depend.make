# Empty compiler generated dependencies file for table1_2_oracle_traversal.
# This may be replaced when dependencies are built.
