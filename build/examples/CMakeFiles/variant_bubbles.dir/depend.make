# Empty dependencies file for variant_bubbles.
# This may be replaced when dependencies are built.
