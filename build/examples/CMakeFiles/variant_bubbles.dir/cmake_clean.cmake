file(REMOVE_RECURSE
  "CMakeFiles/variant_bubbles.dir/variant_bubbles.cpp.o"
  "CMakeFiles/variant_bubbles.dir/variant_bubbles.cpp.o.d"
  "variant_bubbles"
  "variant_bubbles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/variant_bubbles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
