file(REMOVE_RECURSE
  "CMakeFiles/multi_k_sweep.dir/multi_k_sweep.cpp.o"
  "CMakeFiles/multi_k_sweep.dir/multi_k_sweep.cpp.o.d"
  "multi_k_sweep"
  "multi_k_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_k_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
