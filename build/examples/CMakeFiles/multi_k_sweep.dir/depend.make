# Empty dependencies file for multi_k_sweep.
# This may be replaced when dependencies are built.
