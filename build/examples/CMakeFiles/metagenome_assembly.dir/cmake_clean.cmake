file(REMOVE_RECURSE
  "CMakeFiles/metagenome_assembly.dir/metagenome_assembly.cpp.o"
  "CMakeFiles/metagenome_assembly.dir/metagenome_assembly.cpp.o.d"
  "metagenome_assembly"
  "metagenome_assembly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metagenome_assembly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
