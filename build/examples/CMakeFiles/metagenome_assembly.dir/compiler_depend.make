# Empty compiler generated dependencies file for metagenome_assembly.
# This may be replaced when dependencies are built.
