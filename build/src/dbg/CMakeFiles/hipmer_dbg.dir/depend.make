# Empty dependencies file for hipmer_dbg.
# This may be replaced when dependencies are built.
