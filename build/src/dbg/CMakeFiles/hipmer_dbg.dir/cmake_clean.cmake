file(REMOVE_RECURSE
  "CMakeFiles/hipmer_dbg.dir/contig_generator.cpp.o"
  "CMakeFiles/hipmer_dbg.dir/contig_generator.cpp.o.d"
  "CMakeFiles/hipmer_dbg.dir/oracle.cpp.o"
  "CMakeFiles/hipmer_dbg.dir/oracle.cpp.o.d"
  "libhipmer_dbg.a"
  "libhipmer_dbg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hipmer_dbg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
