file(REMOVE_RECURSE
  "libhipmer_dbg.a"
)
