file(REMOVE_RECURSE
  "CMakeFiles/hipmer_baseline.dir/baselines.cpp.o"
  "CMakeFiles/hipmer_baseline.dir/baselines.cpp.o.d"
  "libhipmer_baseline.a"
  "libhipmer_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hipmer_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
