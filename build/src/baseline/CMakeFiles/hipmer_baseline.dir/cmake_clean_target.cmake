file(REMOVE_RECURSE
  "libhipmer_baseline.a"
)
