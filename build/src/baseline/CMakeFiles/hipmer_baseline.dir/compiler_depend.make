# Empty compiler generated dependencies file for hipmer_baseline.
# This may be replaced when dependencies are built.
