file(REMOVE_RECURSE
  "libhipmer_kcount.a"
)
