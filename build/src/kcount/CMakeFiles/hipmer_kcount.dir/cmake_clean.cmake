file(REMOVE_RECURSE
  "CMakeFiles/hipmer_kcount.dir/kmer_analysis.cpp.o"
  "CMakeFiles/hipmer_kcount.dir/kmer_analysis.cpp.o.d"
  "CMakeFiles/hipmer_kcount.dir/ufx_io.cpp.o"
  "CMakeFiles/hipmer_kcount.dir/ufx_io.cpp.o.d"
  "libhipmer_kcount.a"
  "libhipmer_kcount.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hipmer_kcount.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
