
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kcount/kmer_analysis.cpp" "src/kcount/CMakeFiles/hipmer_kcount.dir/kmer_analysis.cpp.o" "gcc" "src/kcount/CMakeFiles/hipmer_kcount.dir/kmer_analysis.cpp.o.d"
  "/root/repo/src/kcount/ufx_io.cpp" "src/kcount/CMakeFiles/hipmer_kcount.dir/ufx_io.cpp.o" "gcc" "src/kcount/CMakeFiles/hipmer_kcount.dir/ufx_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pgas/CMakeFiles/hipmer_pgas.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hipmer_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
