# Empty dependencies file for hipmer_kcount.
# This may be replaced when dependencies are built.
