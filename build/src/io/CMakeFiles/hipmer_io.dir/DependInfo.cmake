
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/fasta.cpp" "src/io/CMakeFiles/hipmer_io.dir/fasta.cpp.o" "gcc" "src/io/CMakeFiles/hipmer_io.dir/fasta.cpp.o.d"
  "/root/repo/src/io/fastq.cpp" "src/io/CMakeFiles/hipmer_io.dir/fastq.cpp.o" "gcc" "src/io/CMakeFiles/hipmer_io.dir/fastq.cpp.o.d"
  "/root/repo/src/io/parallel_fastq.cpp" "src/io/CMakeFiles/hipmer_io.dir/parallel_fastq.cpp.o" "gcc" "src/io/CMakeFiles/hipmer_io.dir/parallel_fastq.cpp.o.d"
  "/root/repo/src/io/seqdb.cpp" "src/io/CMakeFiles/hipmer_io.dir/seqdb.cpp.o" "gcc" "src/io/CMakeFiles/hipmer_io.dir/seqdb.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pgas/CMakeFiles/hipmer_pgas.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hipmer_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
