# Empty compiler generated dependencies file for hipmer_io.
# This may be replaced when dependencies are built.
