file(REMOVE_RECURSE
  "libhipmer_io.a"
)
