file(REMOVE_RECURSE
  "CMakeFiles/hipmer_io.dir/fasta.cpp.o"
  "CMakeFiles/hipmer_io.dir/fasta.cpp.o.d"
  "CMakeFiles/hipmer_io.dir/fastq.cpp.o"
  "CMakeFiles/hipmer_io.dir/fastq.cpp.o.d"
  "CMakeFiles/hipmer_io.dir/parallel_fastq.cpp.o"
  "CMakeFiles/hipmer_io.dir/parallel_fastq.cpp.o.d"
  "CMakeFiles/hipmer_io.dir/seqdb.cpp.o"
  "CMakeFiles/hipmer_io.dir/seqdb.cpp.o.d"
  "libhipmer_io.a"
  "libhipmer_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hipmer_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
