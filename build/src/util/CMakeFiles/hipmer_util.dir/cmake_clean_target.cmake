file(REMOVE_RECURSE
  "libhipmer_util.a"
)
