# Empty compiler generated dependencies file for hipmer_util.
# This may be replaced when dependencies are built.
