file(REMOVE_RECURSE
  "CMakeFiles/hipmer_util.dir/options.cpp.o"
  "CMakeFiles/hipmer_util.dir/options.cpp.o.d"
  "CMakeFiles/hipmer_util.dir/stats.cpp.o"
  "CMakeFiles/hipmer_util.dir/stats.cpp.o.d"
  "CMakeFiles/hipmer_util.dir/table.cpp.o"
  "CMakeFiles/hipmer_util.dir/table.cpp.o.d"
  "libhipmer_util.a"
  "libhipmer_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hipmer_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
