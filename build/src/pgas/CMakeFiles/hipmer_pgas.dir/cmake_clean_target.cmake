file(REMOVE_RECURSE
  "libhipmer_pgas.a"
)
