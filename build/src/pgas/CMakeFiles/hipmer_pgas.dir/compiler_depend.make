# Empty compiler generated dependencies file for hipmer_pgas.
# This may be replaced when dependencies are built.
