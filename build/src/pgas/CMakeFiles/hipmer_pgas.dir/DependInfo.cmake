
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pgas/comm_stats.cpp" "src/pgas/CMakeFiles/hipmer_pgas.dir/comm_stats.cpp.o" "gcc" "src/pgas/CMakeFiles/hipmer_pgas.dir/comm_stats.cpp.o.d"
  "/root/repo/src/pgas/thread_team.cpp" "src/pgas/CMakeFiles/hipmer_pgas.dir/thread_team.cpp.o" "gcc" "src/pgas/CMakeFiles/hipmer_pgas.dir/thread_team.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/hipmer_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
