file(REMOVE_RECURSE
  "CMakeFiles/hipmer_pgas.dir/comm_stats.cpp.o"
  "CMakeFiles/hipmer_pgas.dir/comm_stats.cpp.o.d"
  "CMakeFiles/hipmer_pgas.dir/thread_team.cpp.o"
  "CMakeFiles/hipmer_pgas.dir/thread_team.cpp.o.d"
  "libhipmer_pgas.a"
  "libhipmer_pgas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hipmer_pgas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
