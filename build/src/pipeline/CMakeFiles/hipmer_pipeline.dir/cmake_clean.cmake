file(REMOVE_RECURSE
  "CMakeFiles/hipmer_pipeline.dir/pipeline.cpp.o"
  "CMakeFiles/hipmer_pipeline.dir/pipeline.cpp.o.d"
  "libhipmer_pipeline.a"
  "libhipmer_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hipmer_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
