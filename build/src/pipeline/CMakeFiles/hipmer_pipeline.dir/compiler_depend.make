# Empty compiler generated dependencies file for hipmer_pipeline.
# This may be replaced when dependencies are built.
