file(REMOVE_RECURSE
  "libhipmer_pipeline.a"
)
