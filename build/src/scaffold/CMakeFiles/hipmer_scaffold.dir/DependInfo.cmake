
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/scaffold/bubbles.cpp" "src/scaffold/CMakeFiles/hipmer_scaffold.dir/bubbles.cpp.o" "gcc" "src/scaffold/CMakeFiles/hipmer_scaffold.dir/bubbles.cpp.o.d"
  "/root/repo/src/scaffold/depths.cpp" "src/scaffold/CMakeFiles/hipmer_scaffold.dir/depths.cpp.o" "gcc" "src/scaffold/CMakeFiles/hipmer_scaffold.dir/depths.cpp.o.d"
  "/root/repo/src/scaffold/gap_closing.cpp" "src/scaffold/CMakeFiles/hipmer_scaffold.dir/gap_closing.cpp.o" "gcc" "src/scaffold/CMakeFiles/hipmer_scaffold.dir/gap_closing.cpp.o.d"
  "/root/repo/src/scaffold/insert_size.cpp" "src/scaffold/CMakeFiles/hipmer_scaffold.dir/insert_size.cpp.o" "gcc" "src/scaffold/CMakeFiles/hipmer_scaffold.dir/insert_size.cpp.o.d"
  "/root/repo/src/scaffold/links.cpp" "src/scaffold/CMakeFiles/hipmer_scaffold.dir/links.cpp.o" "gcc" "src/scaffold/CMakeFiles/hipmer_scaffold.dir/links.cpp.o.d"
  "/root/repo/src/scaffold/ordering.cpp" "src/scaffold/CMakeFiles/hipmer_scaffold.dir/ordering.cpp.o" "gcc" "src/scaffold/CMakeFiles/hipmer_scaffold.dir/ordering.cpp.o.d"
  "/root/repo/src/scaffold/sequence_builder.cpp" "src/scaffold/CMakeFiles/hipmer_scaffold.dir/sequence_builder.cpp.o" "gcc" "src/scaffold/CMakeFiles/hipmer_scaffold.dir/sequence_builder.cpp.o.d"
  "/root/repo/src/scaffold/splints_spans.cpp" "src/scaffold/CMakeFiles/hipmer_scaffold.dir/splints_spans.cpp.o" "gcc" "src/scaffold/CMakeFiles/hipmer_scaffold.dir/splints_spans.cpp.o.d"
  "/root/repo/src/scaffold/types.cpp" "src/scaffold/CMakeFiles/hipmer_scaffold.dir/types.cpp.o" "gcc" "src/scaffold/CMakeFiles/hipmer_scaffold.dir/types.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pgas/CMakeFiles/hipmer_pgas.dir/DependInfo.cmake"
  "/root/repo/build/src/align/CMakeFiles/hipmer_align.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/hipmer_io.dir/DependInfo.cmake"
  "/root/repo/build/src/dbg/CMakeFiles/hipmer_dbg.dir/DependInfo.cmake"
  "/root/repo/build/src/kcount/CMakeFiles/hipmer_kcount.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hipmer_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
