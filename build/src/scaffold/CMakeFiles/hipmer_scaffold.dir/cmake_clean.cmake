file(REMOVE_RECURSE
  "CMakeFiles/hipmer_scaffold.dir/bubbles.cpp.o"
  "CMakeFiles/hipmer_scaffold.dir/bubbles.cpp.o.d"
  "CMakeFiles/hipmer_scaffold.dir/depths.cpp.o"
  "CMakeFiles/hipmer_scaffold.dir/depths.cpp.o.d"
  "CMakeFiles/hipmer_scaffold.dir/gap_closing.cpp.o"
  "CMakeFiles/hipmer_scaffold.dir/gap_closing.cpp.o.d"
  "CMakeFiles/hipmer_scaffold.dir/insert_size.cpp.o"
  "CMakeFiles/hipmer_scaffold.dir/insert_size.cpp.o.d"
  "CMakeFiles/hipmer_scaffold.dir/links.cpp.o"
  "CMakeFiles/hipmer_scaffold.dir/links.cpp.o.d"
  "CMakeFiles/hipmer_scaffold.dir/ordering.cpp.o"
  "CMakeFiles/hipmer_scaffold.dir/ordering.cpp.o.d"
  "CMakeFiles/hipmer_scaffold.dir/sequence_builder.cpp.o"
  "CMakeFiles/hipmer_scaffold.dir/sequence_builder.cpp.o.d"
  "CMakeFiles/hipmer_scaffold.dir/splints_spans.cpp.o"
  "CMakeFiles/hipmer_scaffold.dir/splints_spans.cpp.o.d"
  "CMakeFiles/hipmer_scaffold.dir/types.cpp.o"
  "CMakeFiles/hipmer_scaffold.dir/types.cpp.o.d"
  "libhipmer_scaffold.a"
  "libhipmer_scaffold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hipmer_scaffold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
