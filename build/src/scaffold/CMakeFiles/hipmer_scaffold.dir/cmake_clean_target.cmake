file(REMOVE_RECURSE
  "libhipmer_scaffold.a"
)
