# Empty dependencies file for hipmer_scaffold.
# This may be replaced when dependencies are built.
