file(REMOVE_RECURSE
  "CMakeFiles/hipmer_sim.dir/datasets.cpp.o"
  "CMakeFiles/hipmer_sim.dir/datasets.cpp.o.d"
  "CMakeFiles/hipmer_sim.dir/genome_sim.cpp.o"
  "CMakeFiles/hipmer_sim.dir/genome_sim.cpp.o.d"
  "CMakeFiles/hipmer_sim.dir/metagenome_sim.cpp.o"
  "CMakeFiles/hipmer_sim.dir/metagenome_sim.cpp.o.d"
  "CMakeFiles/hipmer_sim.dir/read_sim.cpp.o"
  "CMakeFiles/hipmer_sim.dir/read_sim.cpp.o.d"
  "libhipmer_sim.a"
  "libhipmer_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hipmer_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
