file(REMOVE_RECURSE
  "libhipmer_sim.a"
)
