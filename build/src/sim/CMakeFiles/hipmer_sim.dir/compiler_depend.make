# Empty compiler generated dependencies file for hipmer_sim.
# This may be replaced when dependencies are built.
