
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/datasets.cpp" "src/sim/CMakeFiles/hipmer_sim.dir/datasets.cpp.o" "gcc" "src/sim/CMakeFiles/hipmer_sim.dir/datasets.cpp.o.d"
  "/root/repo/src/sim/genome_sim.cpp" "src/sim/CMakeFiles/hipmer_sim.dir/genome_sim.cpp.o" "gcc" "src/sim/CMakeFiles/hipmer_sim.dir/genome_sim.cpp.o.d"
  "/root/repo/src/sim/metagenome_sim.cpp" "src/sim/CMakeFiles/hipmer_sim.dir/metagenome_sim.cpp.o" "gcc" "src/sim/CMakeFiles/hipmer_sim.dir/metagenome_sim.cpp.o.d"
  "/root/repo/src/sim/read_sim.cpp" "src/sim/CMakeFiles/hipmer_sim.dir/read_sim.cpp.o" "gcc" "src/sim/CMakeFiles/hipmer_sim.dir/read_sim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/io/CMakeFiles/hipmer_io.dir/DependInfo.cmake"
  "/root/repo/build/src/pgas/CMakeFiles/hipmer_pgas.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hipmer_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
