
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/align/contig_store.cpp" "src/align/CMakeFiles/hipmer_align.dir/contig_store.cpp.o" "gcc" "src/align/CMakeFiles/hipmer_align.dir/contig_store.cpp.o.d"
  "/root/repo/src/align/mer_aligner.cpp" "src/align/CMakeFiles/hipmer_align.dir/mer_aligner.cpp.o" "gcc" "src/align/CMakeFiles/hipmer_align.dir/mer_aligner.cpp.o.d"
  "/root/repo/src/align/sam.cpp" "src/align/CMakeFiles/hipmer_align.dir/sam.cpp.o" "gcc" "src/align/CMakeFiles/hipmer_align.dir/sam.cpp.o.d"
  "/root/repo/src/align/smith_waterman.cpp" "src/align/CMakeFiles/hipmer_align.dir/smith_waterman.cpp.o" "gcc" "src/align/CMakeFiles/hipmer_align.dir/smith_waterman.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pgas/CMakeFiles/hipmer_pgas.dir/DependInfo.cmake"
  "/root/repo/build/src/dbg/CMakeFiles/hipmer_dbg.dir/DependInfo.cmake"
  "/root/repo/build/src/kcount/CMakeFiles/hipmer_kcount.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hipmer_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
