file(REMOVE_RECURSE
  "libhipmer_align.a"
)
