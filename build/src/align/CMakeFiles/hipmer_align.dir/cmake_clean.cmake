file(REMOVE_RECURSE
  "CMakeFiles/hipmer_align.dir/contig_store.cpp.o"
  "CMakeFiles/hipmer_align.dir/contig_store.cpp.o.d"
  "CMakeFiles/hipmer_align.dir/mer_aligner.cpp.o"
  "CMakeFiles/hipmer_align.dir/mer_aligner.cpp.o.d"
  "CMakeFiles/hipmer_align.dir/sam.cpp.o"
  "CMakeFiles/hipmer_align.dir/sam.cpp.o.d"
  "CMakeFiles/hipmer_align.dir/smith_waterman.cpp.o"
  "CMakeFiles/hipmer_align.dir/smith_waterman.cpp.o.d"
  "libhipmer_align.a"
  "libhipmer_align.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hipmer_align.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
