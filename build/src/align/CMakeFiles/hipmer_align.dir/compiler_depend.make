# Empty compiler generated dependencies file for hipmer_align.
# This may be replaced when dependencies are built.
